package core

import (
	"context"
	"errors"
	"math"
	"sort"

	"ordu/internal/geom"
	"ordu/internal/hull"
	"ordu/internal/region"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
	"ordu/internal/xheap"
)

// ErrBudgetExceeded is returned by budgeted baselines (ORU-BSL) when the
// region budget is exhausted before the answer is complete, mirroring the
// paper's "fails to terminate within reasonable time" entries.
var ErrBudgetExceeded = errors.New("core: region budget exceeded")

// regionNode is one node of the implicit tree of Section 5.3.1: a
// preference region with its known (order-sensitive) top-i result.
//
// The node owns the whole constraint storage of its region: hsBuf backs
// reg.Hs and hsBack is one contiguous float64 run holding every normal
// vector (inherited parent rows are deep-copied in, new beat rows carved
// after them). Nothing outside the node references either buffer — a
// child copies all rows into its own backing, and finalize detaches the
// buffers before the node is pooled — so recycling a node safely reuses
// both, and the QP assembly sweeps one contiguous run per region.
type regionNode struct {
	reg     region.Region
	hsBuf   []region.Halfspace // pooled header array backing reg.Hs
	hsBack  []float64          // pooled contiguous normals of reg.Hs rows
	top     []int
	deepest int // deepest layer index among the top records
	mindist float64
	witness geom.Vector // the point of the region closest to the seed
	seq     int         // FIFO tie-break for deterministic exploration
	exact   bool        // mindist is the region's true mindist, not a bound
}

// Less orders the exploration min-heap by mindist, with the FIFO sequence
// number as a deterministic tie-break (exact comparison of stored keys).
func (n *regionNode) Less(o *regionNode) bool {
	if n.mindist != o.mindist { //ordlint:allow floatcmp — tie-break on stored keys
		return n.mindist < o.mindist
	}
	return n.seq < o.seq
}

// exploreWS is the per-worker scratch of the region search: the QP-backed
// region workspace, the partition candidate/visited sets and buffers, and a
// regionNode free list. One exploreWS per goroutine; partition only ever
// touches the workspace it is handed.
type exploreWS struct {
	reg     region.Workspace
	inTop   map[int]bool
	cand    map[int]bool
	visited map[int]bool
	queue   []int
	ids     []int
	others  []int
	hs      []region.Halfspace
	// floodBack backs the probe-and-discard beat normals of the Set (ii)
	// flood (beatAllScratch); invalidated probe to probe, never retained.
	floodBack []float64
	// kids is the pooled children slice handed out by partition; callers
	// consume it (pushBound every child) before the next partition call on
	// the same workspace, which reuses it.
	kids []*regionNode
	free []*regionNode
	hb      *hull.Builder    // pooled L_upd hull builder (Reset per partition)
	upd     hull.AdjSnapshot // pooled L_upd members+adjacency extraction
}

// node returns a recycled regionNode (fields reset, buffers retained) or a
// fresh one.
func (ws *exploreWS) node() *regionNode {
	if n := len(ws.free); n > 0 {
		nd := ws.free[n-1]
		ws.free = ws.free[:n-1]
		return nd
	}
	return &regionNode{}
}

// recycle returns a node to the free list. Callers must be done with every
// field: the region value (and its node-owned constraint buffers), top
// slice and witness buffer will be reused. Callers whose region escaped to
// an output (finalize's TopKRegion keeps reg.Hs by reference) must detach
// hsBuf/hsBack — and drop reg — before recycling; everyone else's buffers
// are node-private by construction (children deep-copy every row).
func (ws *exploreWS) recycle(n *regionNode) {
	if n.reg.Hs != nil {
		n.hsBuf = n.reg.Hs[:0]
	}
	n.reg = region.Region{}
	n.top = n.top[:0]
	ws.free = append(ws.free, n)
}

// explorer walks the implicit region tree best-first by mindist from the
// seed, partitioning regions by Theorem 1 until their top-k is known. It is
// shared by ORU (ball mode: expand until m distinct records) and by the
// fixed-region JAA adaptation (clip mode: enumerate every region
// intersecting a given polytope).
type explorer struct {
	w      geom.Vector
	k      int
	layers *hull.Layers
	h      xheap.Heap[*regionNode]
	pushed map[int]bool   // layer-0 members whose top-region was pushed
	clip   *region.Region // nil: unrestricted (ball mode)
	seq    int
	stats  Stats
	ws     exploreWS // main-goroutine scratch (sequential partition, push)

	outSet   map[int]bool
	records  []Record
	regions  []TopKRegion
	budget   int  // max partitionings; 0 = unlimited
	noBypass bool // ablation: always build L_upd hulls, even for tiny unions
}

// newExplorer builds an explorer over the candidate records.
func newExplorer(cands []skyband.Member, w geom.Vector, k int, clip *region.Region) *explorer {
	ids := make([]int, len(cands))
	pts := make([]geom.Vector, len(cands))
	for i, c := range cands {
		ids[i] = c.ID
		pts[i] = c.Point
	}
	return &explorer{
		w:      w,
		k:      k,
		layers: hull.NewLayers(ids, pts),
		pushed: make(map[int]bool),
		clip:   clip,
		outSet: make(map[int]bool),
	}
}

// seed pushes the layer-0 top-region containing the start point (the seed
// vector for ORU; a point of the clip polytope for JAA).
func (e *explorer) seed() bool {
	l0 := e.layers.Layer(0)
	if l0 == nil || len(l0.MemberIDs) == 0 {
		return false
	}
	at := e.w
	if e.clip != nil && !e.clip.Contains(at) {
		p, ok := e.clip.FeasiblePoint()
		if !ok {
			return false
		}
		at = p
	}
	best, bestScore := -1, math.Inf(-1)
	for _, id := range l0.MemberIDs {
		if s := e.layers.Point(id).Dot(at); s > bestScore {
			best, bestScore = id, s
		}
	}
	e.pushL1(best)
	return true
}

// pushL1 pushes the top-region of a layer-0 member, once.
func (e *explorer) pushL1(id int) {
	if e.pushed[id] {
		return
	}
	e.pushed[id] = true
	l0 := e.layers.Layer(0)
	n := e.ws.node()
	e.buildNodeRegion(n, region.Full(len(e.w)), id, l0.Adj[id])
	n.top = append(n.top, id)
	n.deepest = 0
	e.push(n)
}

// buildNodeRegion assembles child's region — the parent's rows followed by
// the "id beats o" rows for every o in others — inside the child's own
// pooled buffers: the Halfspace headers go into hsBuf and every normal
// vector (inherited rows included) is deep-copied into one contiguous run
// of hsBack. Deep-copying severs all aliasing between parent and child, so
// recycling either node reuses its buffers without corrupting the other,
// and the QP assembly reads one contiguous float64 run per region.
//
//ordlint:noalloc
func (e *explorer) buildNodeRegion(child *regionNode, parent region.Region, id int, others []int) {
	d := len(e.w)
	need := (len(parent.Hs) + len(others)) * d
	back := child.hsBack
	if cap(back) < need {
		back = make([]float64, need) //ordlint:allow noalloc — pool growth, amortised across the node's reuses
	}
	back = back[:cap(back)]
	hs := child.hsBuf[:0]
	off := 0
	for _, h := range parent.Hs {
		a := back[off : off+d : off+d]
		copy(a, h.A)
		hs = append(hs, region.Halfspace{A: a, B: h.B})
		off += d
	}
	p := e.layers.Point(id)
	for _, o := range others {
		q := e.layers.Point(o)
		a := back[off : off+d : off+d]
		for j := 0; j < d; j++ {
			a[j] = p[j] - q[j]
		}
		hs = append(hs, region.Halfspace{A: a, B: 0})
		off += d
	}
	child.reg = region.Region{Dim: d, Hs: hs}
	child.hsBuf = hs
	child.hsBack = back
}

// resolve computes the node's exact mindist and witness (within the clip,
// when set). It reports false — and recycles the node — when the region is
// empty. The node's stored mindist must be a valid lower bound on entry
// (the parent's mindist for partition children, 0 for roots): the child
// region is a subset of its parent's, so its true mindist can never be
// smaller, and clamping absorbs the solver's last-ulp noise — keeping the
// finalization order provably monotone. Only called from the main goroutine.
func (e *explorer) resolve(n *regionNode) bool {
	var clipHs []region.Halfspace
	if e.clip != nil {
		clipHs = e.clip.Hs
	}
	dist, closest, ok := n.reg.ProbeMinDist(clipHs, e.w, &e.ws.reg)
	if !ok {
		e.ws.recycle(n)
		return false
	}
	if dist < n.mindist {
		dist = n.mindist
	}
	n.mindist = dist
	// closest aliases the workspace's solution buffer; copy it into the
	// node's own (reused) witness buffer.
	n.witness = append(n.witness[:0], closest...)
	n.exact = true
	return true
}

// push computes the node's mindist eagerly and enqueues it; empty regions
// are dropped (and their nodes recycled). Used for root-level regions,
// which have no parent bound to inherit (their lower bound is 0).
func (e *explorer) push(n *regionNode) {
	n.mindist = 0
	if !e.resolve(n) {
		return
	}
	n.seq = e.seq
	e.seq++
	e.h.Push(n)
}

// pushBound enqueues a partition child keyed by its parent's mindist — a
// valid lower bound, since the child region is a subset of the parent's.
// The exact mindist (one projection QP) is deferred to the moment the node
// is actually popped; nodes still in the heap when the search stops never
// pay for it. Re-pushing on resolution keeps the node's original sequence
// number, so the exact-key pop order (and hence all output) is identical to
// the eager strategy, ties included.
func (e *explorer) pushBound(n *regionNode, bound float64) {
	n.mindist = bound
	n.exact = false
	n.seq = e.seq
	e.seq++
	e.h.Push(n)
}

// explore runs the best-first loop. With targetM > 0 it stops as soon as
// that many distinct records are confirmed; with targetM == 0 it exhausts
// the heap (clip mode / full enumeration). It reports whether the target
// was reached (always true for targetM == 0 unless the budget tripped).
func (e *explorer) explore(ctx context.Context, targetM int) (complete bool, err error) {
	for e.h.Len() > 0 {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		n := e.h.Pop()
		if !n.exact {
			// Bound-keyed child: compute the real mindist and re-insert
			// (or drop the node when its region turns out empty).
			if e.resolve(n) {
				e.h.Push(n)
			}
			continue
		}
		if len(n.top) == 1 {
			// Lazily extend the root level along layer-0 adjacency whenever
			// a top-1 region is popped — including under k = 1, where the
			// region is also finalized immediately.
			l0 := e.layers.Layer(0)
			for _, a := range l0.Adj[n.top[0]] {
				e.pushL1(a)
			}
		}
		if len(n.top) >= e.k {
			e.finalize(n)
			if targetM > 0 && len(e.records) >= targetM {
				return true, nil
			}
			continue
		}
		if e.budget > 0 && e.stats.RegionsPartitioned >= e.budget {
			return false, ErrBudgetExceeded
		}
		e.stats.RegionsPartitioned++
		children := e.partition(n, &e.ws)
		if children == nil {
			// Candidates exhausted inside this region: the top list cannot
			// grow further; finalize it short (only possible when the
			// candidate set is smaller than k).
			e.finalize(n)
			if targetM > 0 && len(e.records) >= targetM {
				return true, nil
			}
			continue
		}
		bound := n.mindist
		e.ws.recycle(n) // children re-derive everything they need
		for _, c := range children {
			e.pushBound(c, bound)
		}
	}
	return targetM == 0, nil
}

// partition applies Theorem 1 to a popped region: the next-ranked record
// anywhere in it comes from Set (i) (records adjacent to a top member in
// its own layer) or Set (ii) (next-layer records whose top-region overlaps
// the region). It returns one child per possible next record, or nil when
// no next record exists. All scratch state comes from ws (one per
// goroutine); the layers structure is only read.
func (e *explorer) partition(n *regionNode, ws *exploreWS) []*regionNode {
	if ws.inTop == nil {
		ws.inTop = make(map[int]bool)
		ws.cand = make(map[int]bool)
		ws.visited = make(map[int]bool)
	}
	inTop := ws.inTop
	clear(inTop)
	for _, id := range n.top {
		inTop[id] = true
	}
	cand := ws.cand
	clear(cand)
	// Set (i): adjacent records of each top member within its layer.
	for _, id := range n.top {
		li, ok := e.layers.LayerOf(id)
		if !ok {
			continue
		}
		u := e.layers.Layer(li)
		for _, a := range u.Adj[id] {
			if !inTop[a] {
				cand[a] = true
			}
		}
	}
	// Set (ii): next-layer records whose top-region overlaps n.reg. The
	// top-regions of a layer tile the preference domain, so the members
	// overlapping a convex region form a connected patch of the adjacency
	// graph: start from the member that tops the region's witness point
	// and flood outward, running the (QP) overlap test only along the
	// frontier instead of for every member of the layer.
	if lnext := e.layers.Layer(n.deepest + 1); lnext != nil && len(lnext.MemberIDs) > 0 {
		start, bestScore := -1, math.Inf(-1)
		for _, id := range lnext.MemberIDs {
			if s := e.layers.Point(id).Dot(n.witness); s > bestScore {
				start, bestScore = id, s
			}
		}
		visited := ws.visited
		clear(visited)
		visited[start] = true
		queue := append(ws.queue[:0], start)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			ws.hs, ws.floodBack = beatAllScratch(e.layers, id, lnext.Adj[id], ws.hs[:0], ws.floodBack)
			// Witness screen: n.witness is a point of n.reg (its mindist
			// projection); when it clearly satisfies every new halfspace the
			// intersection is certainly non-empty and the QP probe is skipped.
			// The margin keeps the screen strictly conservative w.r.t. the
			// solver's own tolerance, so marginal cases still go to the QP.
			// The flood's start member always passes: it maximises the dot
			// product at the witness, which is exactly its beat system.
			// When the screen is inconclusive, the emptiness probe projects
			// the witness rather than the barycentre: the witness already
			// satisfies every row of n.reg, so the solver's active set only
			// has to chase the new beat rows.
			if !witnessInside(n.witness, ws.hs) && n.reg.ProbeEmptyAt(n.witness, ws.hs, &ws.reg) {
				continue
			}
			cand[id] = true
			for _, a := range lnext.Adj[id] {
				if !visited[a] {
					visited[a] = true
					queue = append(queue, a)
				}
			}
		}
		ws.queue = queue[:0]
	}
	if len(cand) == 0 {
		return nil
	}
	// L_upd: the upper hull of the candidate union; its top-regions
	// partition n.reg by the identity of the next-ranked record (Lemma 2).
	ids := ws.ids[:0]
	for id := range cand {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ws.ids = ids
	var memberIDs []int
	adjOf := func(id int) []int { return nil }
	// Above d=4 the facet count of an upper hull grows so fast (Upper Bound
	// Theorem) that the all-pairs formulation wins for any union size the
	// search produces in practice.
	bypass := 8
	if len(e.w) >= 5 {
		bypass = 1 << 30
	}
	if e.noBypass {
		bypass = 0
	}
	if len(ids) <= bypass {
		// Small unions: skip the hull and constrain each candidate against
		// all the others. Non-extreme candidates simply yield empty child
		// regions, which the push discards — same partition, fewer QPs than
		// the hull's membership tests would cost.
		memberIDs = ids
		adjOf = func(id int) []int {
			others := ws.others[:0]
			for _, o := range ids {
				if o != id {
					others = append(others, o)
				}
			}
			ws.others = others
			return others
		}
	} else {
		// Pooled builder: the facet free list and point arena stay warm
		// across the thousands of partition calls of one exploration.
		if ws.hb == nil {
			ws.hb = hull.NewBuilder(len(e.w))
		} else {
			ws.hb.Reset(len(e.w))
		}
		for _, id := range ids {
			ws.hb.Add(id, e.layers.Point(id))
		}
		ws.hb.UpperAdjInto(&ws.upd)
		memberIDs = ws.upd.MemberIDs
		adjOf = ws.upd.Adj
	}
	children := ws.kids[:0]
	for _, id := range memberIDs {
		child := ws.node()
		e.buildNodeRegion(child, n.reg, id, adjOf(id))
		child.deepest = n.deepest
		if li, ok := e.layers.LayerOf(id); ok && li > child.deepest {
			child.deepest = li
		}
		child.top = append(append(child.top, n.top...), id)
		children = append(children, child)
	}
	ws.kids = children
	return children
}

// beatAllScratch is beatAll with the normal vectors carved from a reusable
// scratch buffer instead of a fresh backing array: for probe-and-discard
// overlap tests whose halfspaces are never retained past the probe. It
// returns the (possibly grown) scratch buffer for the caller to keep; the
// emitted halfspaces alias it and are invalidated by the next call with the
// same buffer.
//
//ordlint:noalloc
func beatAllScratch(ls *hull.Layers, id int, others []int, hs []region.Halfspace, back []float64) ([]region.Halfspace, []float64) {
	if len(others) == 0 {
		return hs, back
	}
	p := ls.Point(id)
	d := len(p)
	if cap(back) < len(others)*d {
		back = make([]float64, len(others)*d*2) //ordlint:allow noalloc — scratch growth, amortised across probes
	}
	back = back[:cap(back)]
	for i, o := range others {
		q := ls.Point(o)
		a := back[i*d : (i+1)*d : (i+1)*d]
		for j := 0; j < d; j++ {
			a[j] = p[j] - q[j]
		}
		hs = append(hs, region.Halfspace{A: a, B: 0})
	}
	return hs, back
}

// witnessInside reports whether the point clearly (beyond the QP solver's
// feasibility tolerance) satisfies every halfspace — a sufficient certificate
// that a region containing the point still intersects the halfspaces.
//
//ordlint:noalloc
func witnessInside(w geom.Vector, hs []region.Halfspace) bool {
	for _, h := range hs {
		s := -h.B
		for j, a := range h.A {
			s += a * w[j]
		}
		if s <= 1e-8 {
			return false
		}
	}
	return true
}

// finalize records a completed region and its newly confirmed records, then
// recycles the node. The retained TopKRegion keeps n.reg's constraint rows
// by reference, so the node's pooled buffers are detached (left to the
// output) before the node returns to the free list; the next region built
// on the recycled node simply grows fresh buffers.
func (e *explorer) finalize(n *regionNode) {
	e.stats.RegionsFinalized++
	tk := make([]Record, len(n.top))
	for i, id := range n.top {
		tk[i] = Record{ID: id, Point: e.layers.Point(id)}
		if !e.outSet[id] {
			e.outSet[id] = true
			e.records = append(e.records, Record{ID: id, Point: e.layers.Point(id)})
		}
	}
	e.regions = append(e.regions, TopKRegion{Region: n.reg, TopK: tk, MinDist: n.mindist})
	n.reg = region.Region{}
	n.hsBuf = nil
	n.hsBack = nil
	e.ws.recycle(n)
}

// estimateRhoBar produces the initial radius overestimate of Section 5.3:
// the radius at which the incremental rho-skyline's upper hull first holds
// `target` extreme vertices. exhausted reports that the skyline ran dry
// first (the returned radius is then +Inf, i.e. the whole k-skyband is the
// candidate set).
func estimateRhoBar(ctx context.Context, tree *rtree.Tree, w geom.Vector, target int) (rhoBar float64, exhausted bool, fetched int, err error) {
	ird := skyband.NewIRD(tree, w, 1)
	b := hull.NewBuilder(tree.Dim())
	rho := 0.0
	for {
		rel, ok, err := ird.NextCtx(ctx)
		if err != nil {
			return 0, false, fetched, err
		}
		if !ok {
			return math.Inf(1), true, fetched, nil
		}
		fetched++
		b.Add(rel.ID, rel.Point)
		rho = rel.Radius
		// The vertex count cannot reach the target before `target` records
		// were fetched; past that, the exact (QP-backed) count is checked
		// only every few fetches — overshooting the stop by a handful of
		// skyline records merely loosens the (already over-) estimate.
		if fetched >= target && (fetched-target)%8 == 0 && b.MemberCount() >= target {
			return rho, false, fetched, nil
		}
	}
}

// ORU computes the paper's second operator (Definition 2): the records in
// the top-k result of at least one preference vector within distance rho of
// w, for the minimum rho yielding exactly m records — reporting, as a
// by-product, every order-sensitive top-k result with its region.
//
// This is the complete algorithm of Section 5.3: rho-bar estimation via the
// incremental rho-skyline, candidate restriction to the rho-bar-skyband,
// and best-first exploration of the implicit region tree with lazily
// computed upper-hull layers. Should the estimate ever prove too small
// (possible only on degenerate inputs), the estimation target is doubled
// and the search restarted, preserving exactness.
func ORU(tree *rtree.Tree, w geom.Vector, k, m int) (*ORUResult, error) {
	return ORUWithCtx(context.Background(), tree, w, k, m, ORUOptions{})
}

// ORUCtx is ORU with cooperative cancellation: the rho-bar estimation, the
// candidate retrieval and the best-first exploration all poll ctx and abort
// with an error wrapping ctx.Err() once it is done.
func ORUCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k, m int) (*ORUResult, error) {
	return ORUWithCtx(ctx, tree, w, k, m, ORUOptions{})
}

// ORUOptions tune the complete ORU algorithm; the zero value is the
// configuration evaluated in the paper.
type ORUOptions struct {
	// NoPartitionBypass disables the small-union shortcut in Theorem-1
	// partitioning (used by the ablation benchmarks): every partitioning
	// builds an explicit L_upd upper hull.
	NoPartitionBypass bool
	// Workers > 1 partitions regions concurrently — the parallelisation
	// direction of Section 6.4. The output is identical to the sequential
	// algorithm; only wall-clock changes.
	Workers int
}

// ORUWith is ORU with explicit algorithm options.
func ORUWith(tree *rtree.Tree, w geom.Vector, k, m int, opts ORUOptions) (*ORUResult, error) {
	return ORUWithCtx(context.Background(), tree, w, k, m, opts)
}

// ORUWithCtx is ORUWith with cooperative cancellation (see ORUCtx).
func ORUWithCtx(ctx context.Context, tree *rtree.Tree, w geom.Vector, k, m int, opts ORUOptions) (*ORUResult, error) {
	if err := validate(tree, w, k, m); err != nil {
		return nil, err
	}
	target := m
	for {
		rhoBar, exhausted, fetched, err := estimateRhoBar(ctx, tree, w, target)
		if err != nil {
			return nil, err
		}
		cands, err := skyband.RhoSkybandCtx(ctx, tree, w, k, rhoBar)
		if err != nil {
			return nil, err
		}
		ex := newExplorer(cands, w, k, nil)
		ex.noBypass = opts.NoPartitionBypass
		ex.stats.Fetched = fetched + len(cands)
		if ex.seed() {
			var complete bool
			var exErr error
			if opts.Workers > 1 {
				complete, exErr = ex.exploreParallel(ctx, m, opts.Workers)
			} else {
				complete, exErr = ex.explore(ctx, m)
			}
			if exErr != nil {
				return nil, exErr
			}
			if complete {
				ex.stats.LayersComputed = ex.layers.Computed()
				return ex.result(), nil
			}
		}
		if exhausted {
			return nil, ErrInsufficientData
		}
		target *= 2
	}
}

// result assembles the ORUResult from the explorer state.
func (e *explorer) result() *ORUResult {
	res := &ORUResult{
		Records: e.records,
		Regions: e.regions,
		Stats:   e.stats,
	}
	if len(e.regions) > 0 {
		res.Rho = e.regions[len(e.regions)-1].MinDist
	}
	return res
}

// EnumerateWithin enumerates every (order-sensitive) top-k result
// attainable for a preference vector inside the clip polytope, over the
// given candidate records (which must be a superset of all records
// appearing in such top-k results, e.g. the clip's R-skyband [54]). It
// powers the fixed-region JAA adaptation used as the paper's ORU
// competitor (Section 6.3).
func EnumerateWithin(cands []skyband.Member, w geom.Vector, k int, clip region.Region) ([]Record, []TopKRegion, error) {
	ex := newExplorer(cands, w, k, &clip)
	if !ex.seed() {
		return nil, nil, nil
	}
	if _, err := ex.explore(context.Background(), 0); err != nil {
		return nil, nil, err
	}
	return ex.records, ex.regions, nil
}

// ORUBSL is the paper's ORU baseline: it uses the same rho-bar estimate,
// but materialises every upper-hull layer of the entire candidate set
// upfront, pushes every layer-1 top-region, and partitions all of them
// exhaustively before reporting the m-sized union of top-k records of the
// closest regions — no gradual expansion in either radius or layer depth.
// budget caps the number of partitionings (0 = unlimited); when exceeded,
// ErrBudgetExceeded is returned, the analogue of the paper's DNF entries.
func ORUBSL(tree *rtree.Tree, w geom.Vector, k, m int, budget int) (*ORUResult, error) {
	if err := validate(tree, w, k, m); err != nil {
		return nil, err
	}
	rhoBar, _, fetched, err := estimateRhoBar(context.Background(), tree, w, m)
	if err != nil {
		return nil, err
	}
	cands := skyband.RhoSkyband(tree, w, k, rhoBar)
	ex := newExplorer(cands, w, k, nil)
	ex.stats.Fetched = fetched + len(cands)
	ex.budget = budget
	// Materialise all layers upfront (the baseline's defining waste).
	for t := 0; ex.layers.Layer(t) != nil; t++ {
	}
	ex.stats.LayersComputed = ex.layers.Computed()
	l0 := ex.layers.Layer(0)
	if l0 == nil {
		return nil, ErrInsufficientData
	}
	for _, id := range l0.MemberIDs {
		ex.pushL1(id)
	}
	// Exhaust the heap: partition everything reachable.
	if _, err := ex.explore(context.Background(), 0); err != nil {
		return nil, err
	}
	// Sort finalized regions by mindist and take the union until m records.
	sort.Slice(ex.regions, func(i, j int) bool {
		return ex.regions[i].MinDist < ex.regions[j].MinDist
	})
	res := &ORUResult{Stats: ex.stats}
	seen := map[int]bool{}
	for _, reg := range ex.regions {
		res.Regions = append(res.Regions, reg)
		added := false
		for _, r := range reg.TopK {
			if !seen[r.ID] {
				seen[r.ID] = true
				res.Records = append(res.Records, r)
				added = true
			}
		}
		_ = added
		res.Rho = reg.MinDist
		if len(res.Records) >= m {
			break
		}
	}
	if len(res.Records) < m {
		return nil, ErrInsufficientData
	}
	return res, nil
}
