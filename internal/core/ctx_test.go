package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ordu/internal/geom"
	"ordu/internal/rtree"
)

func ctxTestTree(n, d int, seed int64) *rtree.Tree {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		s := 0.0
		for j := range p {
			p[j] = rng.Float64()
			s += p[j]
		}
		f := float64(d) / 2 / s
		for j := range p {
			p[j] = p[j] * f
			if p[j] > 1 {
				p[j] = 1
			}
		}
		pts[i] = p
	}
	return rtree.BulkLoad(pts)
}

func TestORDCtxCancelled(t *testing.T) {
	tree := ctxTestTree(500, 3, 11)
	w := geom.Vector{0.4, 0.3, 0.3}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ORDCtx(ctx, tree, w, 3, 15); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Background context reproduces the plain result.
	got, err := ORDCtx(context.Background(), tree, w, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ORD(tree, w, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) || got.Rho != want.Rho {
		t.Fatalf("ctx result diverges: %d/%g vs %d/%g",
			len(got.Records), got.Rho, len(want.Records), want.Rho)
	}
	for i := range got.Records {
		if got.Records[i].ID != want.Records[i].ID {
			t.Fatalf("record %d: %d vs %d", i, got.Records[i].ID, want.Records[i].ID)
		}
	}
}

func TestORUCtxCancelled(t *testing.T) {
	tree := ctxTestTree(500, 3, 12)
	w := geom.Vector{0.3, 0.3, 0.4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ORUCtx(ctx, tree, w, 2, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Parallel exploration honours cancellation too.
	if _, err := ORUWithCtx(ctx, tree, w, 2, 10, ORUOptions{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
}

func TestORUCtxDeadline(t *testing.T) {
	tree := ctxTestTree(20000, 3, 13)
	w := geom.Vector{0.4, 0.3, 0.3}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ORUCtx(ctx, tree, w, 5, 60)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Cooperative checks must abort promptly, not after the full query.
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("cancellation took %v", e)
	}
}
