package core

import (
	"context"
	"fmt"
)

// cancelEvery is the stride, in fetch iterations, at which the tight
// retrieval loops poll for cancellation. Region partitionings are polled on
// every pop instead: each involves QP work orders of magnitude costlier
// than the check.
const cancelEvery = 64

// ctxErr polls ctx without blocking, wrapping any cancellation cause so
// errors.Is(err, context.DeadlineExceeded / context.Canceled) holds for
// callers (e.g. an HTTP layer mapping deadlines to 504).
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("core: query cancelled: %w", ctx.Err())
	default:
		return nil
	}
}
