package core

import (
	"context"
	"sync"
)

// exploreParallel is the parallel variant of explore, implementing the
// parallelisation the paper proposes in Section 6.4: multiple regions are
// popped from the min-heap and partitioned concurrently, since determining
// the next-ranked records in each region is independent of the others.
//
// Correctness relies on two facts. First, partitioning emits no output, so
// reordering partition *work* cannot perturb the answer; only finalizations
// (Case 2) must happen in global mindist order. The loop therefore batches
// consecutive Case-1 pops — all with mindist no larger than the heap's
// remaining minimum — and fully drains the batch (pushing every child)
// before the next Case-2 node is popped. Second, lazy layer materialisation
// is hoisted out of the parallel section: every layer a batched partition
// may touch is computed up front, so workers only read shared state.
//
// Each batch slot owns an exploreWS, so concurrent partitions never share
// scratch. Nodes recycled by the main goroutine (finalize, empty-region
// drops, partitioned parents) accumulate in e.ws.free and are redistributed
// to the slot workspaces between batches.
func (e *explorer) exploreParallel(ctx context.Context, targetM, workers int) (complete bool, err error) {
	wss := make([]*exploreWS, workers)
	for i := range wss {
		wss[i] = &exploreWS{}
	}
	for e.h.Len() > 0 {
		if err := ctxErr(ctx); err != nil {
			return false, err
		}
		// Collect a batch of Case-1 nodes from the top of the heap. New
		// layer-0 regions pushed along the way are themselves Case-1 (for
		// k > 1), and ordering among Case-1 partitions is free.
		var batch []*regionNode
		for len(batch) < workers && e.h.Len() > 0 && len((*e.h.Peek()).top) < e.k {
			n := e.h.Pop()
			if !n.exact {
				// Bound-keyed child: resolve sequentially (the shared region
				// workspace belongs to the main goroutine) and re-insert.
				if e.resolve(n) {
					e.h.Push(n)
				}
				continue
			}
			if len(n.top) == 1 {
				l0 := e.layers.Layer(0)
				for _, a := range l0.Adj[n.top[0]] {
					e.pushL1(a)
				}
			}
			batch = append(batch, n)
		}
		if len(batch) > 0 {
			if e.budget > 0 && e.stats.RegionsPartitioned+len(batch) > e.budget {
				return false, ErrBudgetExceeded
			}
			// Hoist lazy layer computation: materialise every layer the
			// batch can touch before going parallel.
			maxDeepest := 0
			for _, n := range batch {
				if n.deepest > maxDeepest {
					maxDeepest = n.deepest
				}
			}
			e.layers.Layer(maxDeepest + 1) // may be nil; that is fine
			// Hand the main free list out to the slot workspaces so the
			// workers' child nodes come from the pool.
			for i := 0; len(e.ws.free) > 0; i = (i + 1) % len(batch) {
				last := len(e.ws.free) - 1
				wss[i].free = append(wss[i].free, e.ws.free[last])
				e.ws.free = e.ws.free[:last]
			}
			children := make([][]*regionNode, len(batch))
			var wg sync.WaitGroup
			for i, n := range batch {
				wg.Add(1)
				go func(i int, n *regionNode) {
					defer wg.Done()
					children[i] = e.partition(n, wss[i])
				}(i, n)
			}
			wg.Wait()
			e.stats.RegionsPartitioned += len(batch)
			for i, n := range batch {
				if children[i] == nil {
					e.finalize(n)
					if targetM > 0 && len(e.records) >= targetM {
						return true, nil
					}
					continue
				}
				bound := n.mindist
				e.ws.recycle(n)
				for _, c := range children[i] {
					e.pushBound(c, bound)
				}
			}
			continue
		}
		// Heap top is a finalized-depth region: handle sequentially.
		n := e.h.Pop()
		if !n.exact {
			if e.resolve(n) {
				e.h.Push(n)
			}
			continue
		}
		if len(n.top) == 1 {
			l0 := e.layers.Layer(0)
			for _, a := range l0.Adj[n.top[0]] {
				e.pushL1(a)
			}
		}
		e.finalize(n)
		if targetM > 0 && len(e.records) >= targetM {
			return true, nil
		}
	}
	return targetM == 0, nil
}
