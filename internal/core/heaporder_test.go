package core

import (
	"container/heap"
	"math/rand"
	"testing"

	"ordu/internal/xheap"
)

// legacyNodeHeap is the container/heap implementation the explorer used
// before the typed heap, kept verbatim as the ordering oracle: the typed
// xheap must pop regionNodes in exactly the same (mindist, seq) order.
type legacyNodeHeap []*regionNode

func (h legacyNodeHeap) Len() int { return len(h) }
func (h legacyNodeHeap) Less(i, j int) bool {
	if h[i].mindist != h[j].mindist { //ordlint:allow floatcmp — tie-break on stored keys
		return h[i].mindist < h[j].mindist
	}
	return h[i].seq < h[j].seq
}
func (h legacyNodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyNodeHeap) Push(x interface{}) { *h = append(*h, x.(*regionNode)) }
func (h *legacyNodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestNodeHeapOrderMatchesLegacy drives the typed heap and the legacy
// container/heap through identical interleaved push/pop sequences with
// deliberately heavy mindist ties, and requires identical pop order. The
// (mindist, seq) key is a total order over distinct nodes, so any binary
// min-heap must agree — this pins that the generic heap preserves it.
func TestNodeHeapOrderMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var typed xheap.Heap[*regionNode]
		var legacy legacyNodeHeap
		seq := 0
		ops := 400
		for op := 0; op < ops; op++ {
			if typed.Len() != legacy.Len() {
				t.Fatalf("trial %d: size mismatch typed=%d legacy=%d", trial, typed.Len(), legacy.Len())
			}
			if typed.Len() > 0 && rng.Intn(3) == 0 {
				a := typed.Pop()
				b := heap.Pop(&legacy).(*regionNode)
				if a != b {
					t.Fatalf("trial %d op %d: pop mismatch: typed (mindist=%v seq=%d) legacy (mindist=%v seq=%d)",
						trial, op, a.mindist, a.seq, b.mindist, b.seq)
				}
				continue
			}
			// Few distinct mindist values => many ties, exercising the seq
			// tie-break through every sift path.
			n := &regionNode{mindist: float64(rng.Intn(4)), seq: seq}
			seq++
			typed.Push(n)
			heap.Push(&legacy, n)
		}
		for typed.Len() > 0 {
			a := typed.Pop()
			b := heap.Pop(&legacy).(*regionNode)
			if a != b {
				t.Fatalf("trial %d drain: pop mismatch: typed seq=%d legacy seq=%d", trial, a.seq, b.seq)
			}
		}
		if legacy.Len() != 0 {
			t.Fatalf("trial %d: legacy heap not drained", trial)
		}
	}
}
