package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimple2D(t *testing.T) {
	// min -x - y s.t. x + y <= 1, x,y >= 0 -> optimum -1 on the segment.
	pr := &Problem{
		C:   []float64{-1, -1},
		InA: [][]float64{{1, 1}},
		InB: []float64{1},
	}
	x, val, st, err := Solve(pr)
	if err != nil || st != Optimal {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if math.Abs(val+1) > 1e-9 {
		t.Errorf("val = %g, want -1", val)
	}
	if math.Abs(x[0]+x[1]-1) > 1e-9 {
		t.Errorf("x = %v not on boundary", x)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x1 s.t. x1 + x2 = 1 -> 0 at (0,1).
	pr := &Problem{
		C:   []float64{1, 0},
		EqA: [][]float64{{1, 1}},
		EqB: []float64{1},
	}
	x, val, st, err := Solve(pr)
	if err != nil || st != Optimal {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if math.Abs(val) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Errorf("x=%v val=%g", x, val)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 + x2 = 1 and x1 + x2 = 2.
	pr := &Problem{
		C:   []float64{0, 0},
		EqA: [][]float64{{1, 1}, {1, 1}},
		EqB: []float64{1, 2},
	}
	_, _, st, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if st != Infeasible {
		t.Errorf("st = %v, want Infeasible", st)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with no upper bound.
	pr := &Problem{C: []float64{-1}}
	_, _, st, err := Solve(pr)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unbounded {
		t.Errorf("st = %v, want Unbounded", st)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -0.5 means x >= 0.5; min x -> 0.5.
	pr := &Problem{
		C:   []float64{1},
		InA: [][]float64{{-1}},
		InB: []float64{-0.5},
	}
	x, val, st, err := Solve(pr)
	if err != nil || st != Optimal {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if math.Abs(val-0.5) > 1e-9 || math.Abs(x[0]-0.5) > 1e-9 {
		t.Errorf("x=%v val=%g", x, val)
	}
}

func TestRedundantRows(t *testing.T) {
	pr := &Problem{
		C:   []float64{1, 1},
		EqA: [][]float64{{1, 1}, {2, 2}},
		EqB: []float64{1, 2},
	}
	_, val, st, err := Solve(pr)
	if err != nil || st != Optimal {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if math.Abs(val-1) > 1e-9 {
		t.Errorf("val = %g, want 1", val)
	}
}

func TestFeasiblePoint(t *testing.T) {
	pr := &Problem{
		C:   []float64{0, 0, 0},
		EqA: [][]float64{{1, 1, 1}},
		EqB: []float64{1},
		InA: [][]float64{{1, 0, 0}},
		InB: []float64{0.3},
	}
	x, ok := FeasiblePoint(pr)
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	if x[0] > 0.3+1e-9 || math.Abs(x[0]+x[1]+x[2]-1) > 1e-9 {
		t.Errorf("x = %v infeasible", x)
	}
}

// TestMinOverSimplexMatchesVertexEnumeration: a linear function over the
// simplex attains its minimum at a vertex, i.e. the smallest coefficient.
func TestMinOverSimplexMatchesVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		d := 2 + rng.Intn(6)
		c := make([]float64, d)
		minC := math.Inf(1)
		for i := range c {
			c[i] = rng.NormFloat64()
			minC = math.Min(minC, c[i])
		}
		ones := make([]float64, d)
		for i := range ones {
			ones[i] = 1
		}
		pr := &Problem{C: c, EqA: [][]float64{ones}, EqB: []float64{1}}
		_, val, st, err := Solve(pr)
		if err != nil || st != Optimal {
			t.Fatalf("iter %d: st=%v err=%v", iter, st, err)
		}
		if math.Abs(val-minC) > 1e-7 {
			t.Fatalf("iter %d: val=%g want %g", iter, val, minC)
		}
	}
}
