// Package lp implements a small dense two-phase simplex solver for the
// linear programs used by the fixed-region baselines ([20], [54]) and by the
// test suite to cross-check the QP solver's feasibility verdicts.
//
// The solved form is
//
//	min  c . x
//	s.t. EqA x  = EqB
//	     InA x <= InB
//	     x >= 0
//
// which matches the preference domain: variables are simplex coordinates and
// hence naturally non-negative. Slack variables convert inequalities to
// equalities; phase one minimises the sum of artificial variables; Bland's
// rule guarantees termination.
package lp

import (
	"errors"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means a finite optimum was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Problem is one linear program. C has one entry per variable; EqA/InA rows
// must have the same width as C.
type Problem struct {
	C   []float64
	EqA [][]float64
	EqB []float64
	InA [][]float64
	InB []float64
}

// ErrIteration is returned if the simplex method exceeds its iteration
// budget, which indicates a malformed problem.
var ErrIteration = errors.New("lp: iteration limit exceeded")

const (
	eps     = 1e-9
	maxIter = 50000
)

// Solve returns the optimal variable assignment and objective value.
// The returned x is nil unless the status is Optimal.
func Solve(pr *Problem) (x []float64, val float64, status Status, err error) {
	n := len(pr.C)
	mEq, mIn := len(pr.EqA), len(pr.InA)
	m := mEq + mIn

	// Standard form columns: n structural + mIn slacks + m artificials.
	total := n + mIn + m
	// Tableau rows: m constraint rows; we keep A, b and a basis index list.
	A := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < mEq; i++ {
		A[i] = make([]float64, total)
		copy(A[i], pr.EqA[i])
		b[i] = pr.EqB[i]
	}
	for i := 0; i < mIn; i++ {
		r := mEq + i
		A[r] = make([]float64, total)
		copy(A[r], pr.InA[i])
		A[r][n+i] = 1 // slack
		b[r] = pr.InB[i]
	}
	// Make every b non-negative, then install artificial basis.
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		if b[i] < 0 {
			for j := 0; j < n+mIn; j++ {
				A[i][j] = -A[i][j]
			}
			b[i] = -b[i]
		}
		A[i][n+mIn+i] = 1
		basis[i] = n + mIn + i
	}

	// pivot performs a standard pivot on (row, col).
	pivot := func(row, col int) {
		inv := 1 / A[row][col]
		for j := 0; j < total; j++ {
			A[row][j] *= inv
		}
		b[row] *= inv
		for i := 0; i < m; i++ {
			if i == row {
				continue
			}
			f := A[i][col]
			// Skipping only exactly-zero multipliers is a pure optimisation:
			// any nonzero f, however small, must still be eliminated.
			if f == 0 { //ordlint:allow floatcmp — exact-zero fast path, not a tolerance decision
				continue
			}
			for j := 0; j < total; j++ {
				A[i][j] -= f * A[row][j]
			}
			b[i] -= f * b[row]
		}
		basis[row] = col
	}

	// runSimplex minimises the reduced costs for objective obj over the
	// allowed columns [0, limit).
	runSimplex := func(obj []float64, limit int) (float64, Status, error) {
		for iter := 0; iter < maxIter; iter++ {
			// Reduced costs: z_j - c_j with Bland's rule (first negative).
			y := make([]float64, m) // c_B components via basis
			for i := 0; i < m; i++ {
				y[i] = obj[basis[i]]
			}
			enter := -1
			for j := 0; j < limit; j++ {
				inBasis := false
				for _, bj := range basis {
					if bj == j {
						inBasis = true
						break
					}
				}
				if inBasis {
					continue
				}
				red := obj[j]
				for i := 0; i < m; i++ {
					red -= y[i] * A[i][j]
				}
				if red < -eps {
					enter = j
					break
				}
			}
			if enter < 0 {
				val := 0.0
				for i := 0; i < m; i++ {
					val += obj[basis[i]] * b[i]
				}
				return val, Optimal, nil
			}
			// Ratio test, Bland's rule ties by smallest basis index.
			leave, best := -1, math.Inf(1)
			for i := 0; i < m; i++ {
				if A[i][enter] > eps {
					ratio := b[i] / A[i][enter]
					if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
						leave, best = i, ratio
					}
				}
			}
			if leave < 0 {
				return 0, Unbounded, nil
			}
			pivot(leave, enter)
		}
		return 0, Optimal, ErrIteration
	}

	// Phase one: minimise sum of artificials.
	phase1 := make([]float64, total)
	for j := n + mIn; j < total; j++ {
		phase1[j] = 1
	}
	v1, st, errS := runSimplex(phase1, total)
	if errS != nil {
		return nil, 0, Infeasible, errS
	}
	if st != Optimal || v1 > 1e-7 {
		return nil, 0, Infeasible, nil
	}
	// Drive any remaining artificial variables out of the basis.
	for i := 0; i < m; i++ {
		if basis[i] >= n+mIn {
			swapped := false
			for j := 0; j < n+mIn; j++ {
				if math.Abs(A[i][j]) > eps {
					pivot(i, j)
					swapped = true
					break
				}
			}
			if !swapped {
				// Redundant row; harmless — the artificial stays basic at 0.
				_ = swapped
			}
		}
	}

	// Phase two over structural + slack columns only.
	phase2 := make([]float64, total)
	copy(phase2, pr.C)
	v2, st, errS := runSimplex(phase2, n+mIn)
	if errS != nil {
		return nil, 0, Infeasible, errS
	}
	if st != Optimal {
		return nil, 0, st, nil
	}
	x = make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = b[i]
		}
	}
	return x, v2, Optimal, nil
}

// FeasiblePoint returns any feasible point of the system, or ok=false when
// the system is infeasible.
func FeasiblePoint(pr *Problem) (x []float64, ok bool) {
	zero := &Problem{
		C:   make([]float64, len(pr.C)),
		EqA: pr.EqA, EqB: pr.EqB,
		InA: pr.InA, InB: pr.InB,
	}
	x, _, st, err := Solve(zero)
	if err != nil || st != Optimal {
		return nil, false
	}
	return x, true
}
