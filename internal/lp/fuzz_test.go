package lp

import (
	"errors"
	"math"
	"testing"
)

const fuzzEps = 1e-6

// decodeProblem builds a small LP from fuzz bytes. The first byte picks the
// shape (n in [1,4], mEq in [0,2], mIn in [0,3]); each following byte becomes
// one coefficient on the eighth-step grid [-16, 15.875] via int8/8, so the
// fuzzer explores degenerate, redundant, and infeasible programs without
// producing astronomically scaled tableaus.
func decodeProblem(data []byte) (*Problem, bool) {
	if len(data) == 0 {
		return nil, false
	}
	n := int(data[0]&3) + 1
	mEq := int(data[0]>>2&3) % 3
	mIn := int(data[0] >> 4 & 3)
	data = data[1:]
	next := func() (float64, bool) {
		if len(data) == 0 {
			return 0, false
		}
		v := float64(int8(data[0])) / 8
		data = data[1:]
		return v, true
	}
	row := func(w int) ([]float64, bool) {
		r := make([]float64, w)
		for i := range r {
			var ok bool
			if r[i], ok = next(); !ok {
				return nil, false
			}
		}
		return r, true
	}
	pr := &Problem{}
	var ok bool
	if pr.C, ok = row(n); !ok {
		return nil, false
	}
	for i := 0; i < mEq; i++ {
		r, ok := row(n)
		if !ok {
			return nil, false
		}
		b, ok := next()
		if !ok {
			return nil, false
		}
		pr.EqA = append(pr.EqA, r)
		pr.EqB = append(pr.EqB, b)
	}
	for i := 0; i < mIn; i++ {
		r, ok := row(n)
		if !ok {
			return nil, false
		}
		b, ok := next()
		if !ok {
			return nil, false
		}
		pr.InA = append(pr.InA, r)
		pr.InB = append(pr.InB, b)
	}
	return pr, true
}

// FuzzSimplexLP feeds random small programs to the two-phase solver and
// checks the Optimal certificate: x must be non-negative, satisfy every
// equality and inequality row within a scale-aware tolerance, and reproduce
// the reported objective value. Non-Optimal outcomes are legitimate for
// random programs; only a wrong certificate is a bug.
func FuzzSimplexLP(f *testing.F) {
	// min -x1+x2 s.t. x1+x2 = 1, x1 <= 1: optimum at (1, 0).
	f.Add([]byte{21, 248, 8, 8, 8, 8, 8, 0, 8})
	// min x, no constraints: optimum at 0.
	f.Add([]byte{0, 8})
	// min -x, no constraints: unbounded.
	f.Add([]byte{0, 248})
	// 0*x = 1: infeasible.
	f.Add([]byte{4, 8, 0, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, ok := decodeProblem(data)
		if !ok {
			t.Skip("not enough bytes for a complete program")
		}
		x, val, st, err := Solve(pr)
		if err != nil {
			if errors.Is(err, ErrIteration) {
				return // the iteration cap is a documented outcome, not a wrong answer
			}
			t.Fatalf("Solve(%+v): unexpected error %v", pr, err)
		}
		if st != Optimal {
			if x != nil {
				t.Fatalf("Solve(%+v): non-nil x with status %v", pr, st)
			}
			return
		}
		if len(x) != len(pr.C) {
			t.Fatalf("Solve(%+v): len(x) = %d, want %d", pr, len(x), len(pr.C))
		}
		for i, xi := range x {
			if math.IsNaN(xi) || xi < -fuzzEps {
				t.Fatalf("Solve(%+v): x[%d] = %v violates x >= 0", pr, i, xi)
			}
		}
		// tol grows with the magnitudes entering the dot product, so a large
		// but correct certificate is not rejected for accumulated rounding.
		residual := func(row []float64) (dot, tol float64) {
			tol = 1
			for j := range row {
				dot += row[j] * x[j]
				tol += math.Abs(row[j] * x[j])
			}
			return dot, fuzzEps * tol
		}
		for i, rw := range pr.EqA {
			if got, tol := residual(rw); math.Abs(got-pr.EqB[i]) > tol+fuzzEps*math.Abs(pr.EqB[i]) {
				t.Fatalf("Solve(%+v): eq row %d gives %v, want %v", pr, i, got, pr.EqB[i])
			}
		}
		for i, rw := range pr.InA {
			if got, tol := residual(rw); got > pr.InB[i]+tol+fuzzEps*math.Abs(pr.InB[i]) {
				t.Fatalf("Solve(%+v): ineq row %d gives %v > bound %v", pr, i, got, pr.InB[i])
			}
		}
		if got, tol := residual(pr.C); math.Abs(got-val) > tol+fuzzEps*math.Abs(val) {
			t.Fatalf("Solve(%+v): objective %v does not match c.x = %v", pr, val, got)
		}
	})
}
