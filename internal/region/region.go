// Package region represents convex polytopes in the preference domain: the
// top-regions C(r) of Lemma 2, their refinements under Theorem 1, and the
// fixed preference polytopes R of the baseline techniques [20, 54]. A
// region is the intersection of the unit simplex with a set of halfspaces;
// emptiness tests and mindist computations reduce to projection QPs.
package region

import (
	"math"

	"ordu/internal/geom"
	"ordu/internal/qp"
)

// Halfspace is one linear constraint A.v >= B over preference vectors.
type Halfspace struct {
	A geom.Vector
	B float64
}

// Beat returns the halfspace of preference vectors for which record r
// scores at least as high as record q: (r - q).v >= 0. It is the building
// block of every top-region in the paper.
func Beat(r, q geom.Vector) Halfspace {
	return Halfspace{A: r.Sub(q), B: 0}
}

// Region is a convex polytope in the preference domain: the unit simplex
// intersected with the listed halfspaces.
type Region struct {
	Dim int
	Hs  []Halfspace
}

// Full returns the whole preference domain (the unit simplex).
func Full(d int) Region {
	return Region{Dim: d}
}

// With returns a new region additionally constrained by the given
// halfspaces. The receiver is unchanged; the halfspace slice is copied so
// regions can be extended independently along different search branches.
func (r Region) With(hs ...Halfspace) Region {
	out := Region{Dim: r.Dim, Hs: make([]Halfspace, 0, len(r.Hs)+len(hs))}
	out.Hs = append(out.Hs, r.Hs...)
	out.Hs = append(out.Hs, hs...)
	return out
}

// Contains reports whether v satisfies every constraint (with tolerance).
func (r Region) Contains(v geom.Vector) bool {
	if !geom.OnSimplex(v) {
		return false
	}
	for _, h := range r.Hs {
		if h.A.Dot(v) < h.B-1e-9 {
			return false
		}
	}
	return true
}

// problem assembles the QP constraint system for the region.
func (r Region) problem(target geom.Vector) *qp.Problem {
	d := r.Dim
	ones := make([]float64, d)
	for i := range ones {
		ones[i] = 1
	}
	pr := &qp.Problem{
		P:   target,
		EqA: [][]float64{ones},
		EqB: []float64{1},
	}
	for i := 0; i < d; i++ {
		e := make([]float64, d)
		e[i] = 1
		pr.InA = append(pr.InA, e)
		pr.InB = append(pr.InB, 0)
	}
	for _, h := range r.Hs {
		pr.InA = append(pr.InA, h.A)
		pr.InB = append(pr.InB, h.B)
	}
	return pr
}

// MinDist returns the minimum distance from w to the region and the
// closest point. ok is false when the region is empty. w must have the
// region's dimensionality.
func (r Region) MinDist(w geom.Vector) (dist float64, closest geom.Vector, ok bool) {
	x, d2, err := qp.Solve(r.problem(w))
	if err != nil {
		return 0, nil, false
	}
	return d2, x, true
}

// Empty reports whether the region has no feasible point.
func (r Region) Empty() bool {
	_, _, ok := r.MinDist(barycentre(r.Dim))
	return !ok
}

// FeasiblePoint returns a point of the region (the projection of the
// simplex barycentre), or ok=false when the region is empty.
func (r Region) FeasiblePoint() (geom.Vector, bool) {
	_, x, ok := r.MinDist(barycentre(r.Dim))
	return x, ok
}

func barycentre(d int) geom.Vector {
	b := make(geom.Vector, d)
	for i := range b {
		b[i] = 1 / float64(d)
	}
	return b
}

// Box returns the region |v_i - c_i| <= side/2 intersected with the
// simplex: the hypercube preference polytope the fixed-region adaptations
// are fed (Section 6.1).
func Box(c geom.Vector, side float64) Region {
	d := len(c)
	r := Region{Dim: d}
	for i := 0; i < d; i++ {
		lo := c[i] - side/2
		hi := c[i] + side/2
		e := make(geom.Vector, d)
		e[i] = 1
		ne := make(geom.Vector, d)
		ne[i] = -1
		if lo > 0 {
			r.Hs = append(r.Hs, Halfspace{A: e, B: lo})
		}
		if hi < 1 {
			r.Hs = append(r.Hs, Halfspace{A: ne, B: -hi})
		}
	}
	return r
}

// MaxDist returns an upper bound on the distance from w to any point of
// the region (the distance to the farthest simplex vertex, clipped by
// nothing tighter; used only for reporting).
func (r Region) MaxDist(w geom.Vector) float64 {
	return geom.MaxSimplexDist(w)
}

// Infeasible is a sentinel distance for empty regions.
var Infeasible = math.Inf(1)
