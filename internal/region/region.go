// Package region represents convex polytopes in the preference domain: the
// top-regions C(r) of Lemma 2, their refinements under Theorem 1, and the
// fixed preference polytopes R of the baseline techniques [20, 54]. A
// region is the intersection of the unit simplex with a set of halfspaces;
// emptiness tests and mindist computations reduce to projection QPs.
//
// Regions built through With carry their QP constraint matrix with them,
// extended incrementally as halfspaces are appended, so mindist and
// emptiness tests assemble the QP from cached rows instead of rebuilding
// the matrices per call. Combined with a caller-supplied Workspace
// (MinDistWS and friends) the whole mindist path is allocation-free after
// warm-up. A Workspace is NOT goroutine-safe; use one per worker.
package region

import (
	"math"

	"ordu/internal/geom"
	"ordu/internal/qp"
)

// Halfspace is one linear constraint A.v >= B over preference vectors.
type Halfspace struct {
	A geom.Vector
	B float64
}

// Beat returns the halfspace of preference vectors for which record r
// scores at least as high as record q: (r - q).v >= 0. It is the building
// block of every top-region in the paper.
func Beat(r, q geom.Vector) Halfspace {
	return Halfspace{A: r.Sub(q), B: 0}
}

// Region is a convex polytope in the preference domain: the unit simplex
// intersected with the listed halfspaces.
type Region struct {
	Dim int
	Hs  []Halfspace
}

// Full returns the whole preference domain (the unit simplex).
func Full(d int) Region {
	return Region{Dim: d}
}

// With returns a new region additionally constrained by the given
// halfspaces. The receiver is unchanged; the halfspace slice is copied so
// regions can be extended independently along different search branches
// (only the Halfspace headers are copied; the normal vectors themselves
// are shared).
func (r Region) With(hs ...Halfspace) Region {
	out := Region{
		Dim: r.Dim,
		Hs:  make([]Halfspace, 0, len(r.Hs)+len(hs)),
	}
	out.Hs = append(out.Hs, r.Hs...)
	out.Hs = append(out.Hs, hs...)
	return out
}

// Contains reports whether v satisfies every constraint (with tolerance).
func (r Region) Contains(v geom.Vector) bool {
	if !geom.OnSimplex(v) {
		return false
	}
	for _, h := range r.Hs {
		if h.A.Dot(v) < h.B-1e-9 {
			return false
		}
	}
	return true
}

// Workspace carries the QP solver state and the assembled constraint
// system of region queries, so repeated MinDistWS/EmptyWS calls perform no
// heap allocations after warm-up. The zero value is ready for use. Not
// goroutine-safe: one Workspace per worker.
type Workspace struct {
	qp qp.Workspace
	pr qp.Problem
}

// problemWS assembles the QP constraint system for the region into the
// workspace's reusable Problem: the cached simplex rows (shared, read-only)
// followed by the region's halfspace rows.
//
//ordlint:noalloc
func (r Region) problemWS(target geom.Vector, ws *Workspace) *qp.Problem {
	d := r.Dim
	pr := &ws.pr
	pr.P = target
	pr.EqA = append(pr.EqA[:0], geom.SimplexOnes(d))
	pr.EqB = append(pr.EqB[:0], 1)
	pr.InA = append(pr.InA[:0], geom.SimplexAxes(d)...)
	pr.InB = append(pr.InB[:0], geom.SimplexZeros(d)...)
	for _, h := range r.Hs {
		pr.InA = append(pr.InA, h.A)
		pr.InB = append(pr.InB, h.B)
	}
	return pr
}

// MinDist returns the minimum distance from w to the region and the
// closest point. ok is false when the region is empty. w must have the
// region's dimensionality. The returned point is freshly valid for the
// caller to retain; use MinDistWS on the hot path.
func (r Region) MinDist(w geom.Vector) (dist float64, closest geom.Vector, ok bool) {
	var ws Workspace
	return r.MinDistWS(w, &ws)
}

// MinDistWS is MinDist with a caller-supplied workspace. The returned
// closest point aliases the workspace's solution buffer: it is valid until
// the workspace's next use and must be copied if retained.
//
//ordlint:noalloc
func (r Region) MinDistWS(w geom.Vector, ws *Workspace) (dist float64, closest geom.Vector, ok bool) {
	x, d2, err := ws.qp.Solve(r.problemWS(w, ws))
	if err != nil {
		return 0, nil, false
	}
	return d2, x, true
}

// Empty reports whether the region has no feasible point.
func (r Region) Empty() bool {
	var ws Workspace
	return r.EmptyWS(&ws)
}

// EmptyWS is Empty with a caller-supplied workspace.
//
//ordlint:noalloc
func (r Region) EmptyWS(ws *Workspace) bool {
	_, _, ok := r.MinDistWS(geom.SimplexBarycentre(r.Dim), ws)
	return !ok
}

// ProbeEmpty reports whether r intersected with the extra halfspaces is
// empty, without materialising the combined region: the extra rows are
// appended to the workspace's assembled constraint system directly. It is
// the allocation-free form of r.With(hs...).Empty() for probe-and-discard
// overlap tests.
//
//ordlint:noalloc
func (r Region) ProbeEmpty(hs []Halfspace, ws *Workspace) bool {
	return r.ProbeEmptyAt(geom.SimplexBarycentre(r.Dim), hs, ws)
}

// ProbeEmptyAt is ProbeEmpty with a caller-chosen projection point. The
// emptiness answer does not depend on the point, but a point already deep
// inside r (e.g. a cached witness of a prior mindist solve) starts the
// solver with most constraints satisfied, cutting its active-set
// iterations on the dominant non-empty outcome.
//
//ordlint:noalloc
func (r Region) ProbeEmptyAt(at geom.Vector, hs []Halfspace, ws *Workspace) bool {
	pr := r.problemWS(at, ws)
	for _, h := range hs {
		pr.InA = append(pr.InA, h.A)
		pr.InB = append(pr.InB, h.B)
	}
	_, _, err := ws.qp.Solve(pr)
	return err != nil
}

// ProbeMinDist is MinDistWS over the region intersected with extra
// halfspaces, without materialising the combined region: the extra rows are
// appended to the workspace's assembled constraint system directly. It is
// the allocation-free form of r.With(hs...).MinDistWS(w, ws). The returned
// closest point aliases the workspace's solution buffer.
//
//ordlint:noalloc
func (r Region) ProbeMinDist(hs []Halfspace, w geom.Vector, ws *Workspace) (dist float64, closest geom.Vector, ok bool) {
	pr := r.problemWS(w, ws)
	for _, h := range hs {
		pr.InA = append(pr.InA, h.A)
		pr.InB = append(pr.InB, h.B)
	}
	x, d2, err := ws.qp.Solve(pr)
	if err != nil {
		return 0, nil, false
	}
	return d2, x, true
}

// FeasiblePoint returns a point of the region (the projection of the
// simplex barycentre), or ok=false when the region is empty.
func (r Region) FeasiblePoint() (geom.Vector, bool) {
	var ws Workspace
	v, ok := r.FeasiblePointWS(&ws)
	return v, ok
}

// FeasiblePointWS is FeasiblePoint with a caller-supplied workspace; the
// returned point aliases the workspace and must be copied if retained.
//
//ordlint:noalloc
func (r Region) FeasiblePointWS(ws *Workspace) (geom.Vector, bool) {
	_, x, ok := r.MinDistWS(geom.SimplexBarycentre(r.Dim), ws)
	return x, ok
}

// Box returns the region |v_i - c_i| <= side/2 intersected with the
// simplex: the hypercube preference polytope the fixed-region adaptations
// are fed (Section 6.1).
func Box(c geom.Vector, side float64) Region {
	d := len(c)
	r := Region{Dim: d}
	var hs []Halfspace
	for i := 0; i < d; i++ {
		lo := c[i] - side/2
		hi := c[i] + side/2
		e := make(geom.Vector, d)
		e[i] = 1
		ne := make(geom.Vector, d)
		ne[i] = -1
		if lo > 0 {
			hs = append(hs, Halfspace{A: e, B: lo})
		}
		if hi < 1 {
			hs = append(hs, Halfspace{A: ne, B: -hi})
		}
	}
	return r.With(hs...)
}

// MaxDist returns an upper bound on the distance from w to any point of
// the region (the distance to the farthest simplex vertex, clipped by
// nothing tighter; used only for reporting).
func (r Region) MaxDist(w geom.Vector) float64 {
	return geom.MaxSimplexDist(w)
}

// Infeasible is a sentinel distance for empty regions.
var Infeasible = math.Inf(1)
