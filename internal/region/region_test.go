package region

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/geom"
	"ordu/internal/lp"
)

func TestFullSimplex(t *testing.T) {
	r := Full(3)
	if r.Empty() {
		t.Fatal("full simplex reported empty")
	}
	w := geom.Vector{0.2, 0.3, 0.5}
	d, c, ok := r.MinDist(w)
	if !ok || d > 1e-9 {
		t.Fatalf("mindist from interior point = %g", d)
	}
	if !w.Equal(geom.Vector(c)) && w.Dist(geom.Vector(c)) > 1e-9 {
		t.Fatalf("closest = %v", c)
	}
	if !r.Contains(w) {
		t.Error("Contains(w) = false")
	}
	if r.Contains(geom.Vector{0.9, 0.9, 0.9}) {
		t.Error("off-simplex point contained")
	}
}

func TestBeatHalfspace(t *testing.T) {
	r := geom.Vector{0.8, 0.2}
	q := geom.Vector{0.2, 0.8}
	h := Beat(r, q)
	// r beats q where v1 >= v2.
	if h.A.Dot(geom.Vector{0.9, 0.1}) < h.B {
		t.Error("r should beat q at (0.9,0.1)")
	}
	if h.A.Dot(geom.Vector{0.1, 0.9}) >= h.B {
		t.Error("r should lose at (0.1,0.9)")
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	base := Full(2).With(Halfspace{A: geom.Vector{1, 0}, B: 0.3})
	ext1 := base.With(Halfspace{A: geom.Vector{0, 1}, B: 0.5})
	ext2 := base.With(Halfspace{A: geom.Vector{-1, 0}, B: -0.4})
	if len(base.Hs) != 1 || len(ext1.Hs) != 2 || len(ext2.Hs) != 2 {
		t.Fatalf("halfspace counts: %d %d %d", len(base.Hs), len(ext1.Hs), len(ext2.Hs))
	}
	// ext1 requires v2 >= 0.5 and v1 >= 0.3; ext2 requires v1 in [0.3,0.4].
	if ext1.Empty() || ext2.Empty() {
		t.Fatal("feasible regions reported empty")
	}
}

func TestEmptyRegion(t *testing.T) {
	// v1 >= 0.8 and v2 >= 0.8 cannot hold on the 1-simplex.
	r := Full(2).With(
		Halfspace{A: geom.Vector{1, 0}, B: 0.8},
		Halfspace{A: geom.Vector{0, 1}, B: 0.8},
	)
	if !r.Empty() {
		t.Fatal("infeasible region not detected")
	}
	if _, _, ok := r.MinDist(geom.Vector{0.5, 0.5}); ok {
		t.Fatal("MinDist on empty region returned ok")
	}
}

func TestMinDistHandComputed(t *testing.T) {
	// Region v1 >= 0.75 on the 1-simplex; from w=(0.5,0.5) the closest
	// point is (0.75,0.25) at distance 0.25*sqrt(2).
	r := Full(2).With(Halfspace{A: geom.Vector{1, 0}, B: 0.75})
	d, c, ok := r.MinDist(geom.Vector{0.5, 0.5})
	if !ok {
		t.Fatal("region empty")
	}
	want := 0.25 * math.Sqrt2
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("mindist = %g, want %g", d, want)
	}
	if math.Abs(c[0]-0.75) > 1e-9 {
		t.Fatalf("closest = %v", c)
	}
}

// TestEmptinessAgreesWithLP cross-checks the QP-based emptiness test
// against the independent simplex LP solver on random halfspace systems.
func TestEmptinessAgreesWithLP(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(4)
		r := Full(d)
		nh := 1 + rng.Intn(4)
		for i := 0; i < nh; i++ {
			a := make(geom.Vector, d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			r = r.With(Halfspace{A: a, B: rng.NormFloat64() * 0.3})
		}
		// LP formulation: v >= 0 implicit, sum v = 1, A v >= B as -A v <= -B.
		ones := make([]float64, d)
		for j := range ones {
			ones[j] = 1
		}
		pr := &lp.Problem{C: make([]float64, d), EqA: [][]float64{ones}, EqB: []float64{1}}
		for _, h := range r.Hs {
			neg := make([]float64, d)
			for j := range h.A {
				neg[j] = -h.A[j]
			}
			pr.InA = append(pr.InA, neg)
			pr.InB = append(pr.InB, -h.B)
		}
		_, lpFeasible := lp.FeasiblePoint(pr)
		qpEmpty := r.Empty()
		if lpFeasible == qpEmpty {
			// Disagreement: tolerate only razor-thin regions.
			if p, ok := r.FeasiblePoint(); ok {
				_ = p
				t.Fatalf("iter %d: QP empty=%v but LP feasible=%v", iter, qpEmpty, lpFeasible)
			}
			// QP says nonempty... can't happen in this branch.
			if !qpEmpty {
				t.Fatalf("iter %d: inconsistent emptiness", iter)
			}
		}
	}
}

func TestFeasiblePointIsInside(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 100; iter++ {
		d := 2 + rng.Intn(4)
		r := Full(d)
		for i := 0; i < 3; i++ {
			a := make(geom.Vector, d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			r = r.With(Halfspace{A: a, B: -math.Abs(rng.NormFloat64()) * 0.1})
		}
		p, ok := r.FeasiblePoint()
		if !ok {
			continue
		}
		if !r.Contains(p) {
			t.Fatalf("iter %d: feasible point %v not contained", iter, p)
		}
	}
}

func TestBox(t *testing.T) {
	c := geom.Vector{0.4, 0.6}
	r := Box(c, 0.2)
	if !r.Contains(geom.Vector{0.45, 0.55}) {
		t.Error("box must contain points near its centre")
	}
	if r.Contains(geom.Vector{0.7, 0.3}) {
		t.Error("box must exclude far points")
	}
	// A huge box is the whole simplex.
	big := Box(c, 5)
	if len(big.Hs) != 0 {
		t.Errorf("oversized box kept %d constraints", len(big.Hs))
	}
}

func TestMaxDist(t *testing.T) {
	r := Full(2)
	w := geom.Vector{0.5, 0.5}
	if got := r.MaxDist(w); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("MaxDist = %g", got)
	}
}
