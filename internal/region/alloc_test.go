package region

import (
	"testing"

	"ordu/internal/geom"
	"ordu/internal/raceflag"
)

// TestMinDistWSNoAllocs pins the workspace-reuse contract: once a Workspace
// has served a region shape, further MinDistWS/EmptyWS calls perform zero
// heap allocations.
func TestMinDistWSNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	r := Full(3).With(
		Beat(geom.Vector{0.9, 0.2, 0.1}, geom.Vector{0.3, 0.8, 0.2}),
		Beat(geom.Vector{0.9, 0.2, 0.1}, geom.Vector{0.2, 0.3, 0.9}),
	)
	w := geom.Vector{0.1, 0.2, 0.7}
	var ws Workspace
	if _, _, ok := r.MinDistWS(w, &ws); !ok { // warm-up
		t.Fatal("region unexpectedly empty")
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, _, ok := r.MinDistWS(w, &ws); !ok {
			t.Fatal("region unexpectedly empty")
		}
	})
	if avg != 0 {
		t.Fatalf("warmed MinDistWS allocates %.1f times per call, want 0", avg)
	}
}

// TestProbeEmptyNoAllocs covers the probe-and-discard overlap test used by
// the explorer's flood fill.
func TestProbeEmptyNoAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	r := Full(3).With(Beat(geom.Vector{0.9, 0.2, 0.1}, geom.Vector{0.3, 0.8, 0.2}))
	hs := []Halfspace{Beat(geom.Vector{0.9, 0.2, 0.1}, geom.Vector{0.2, 0.3, 0.9})}
	var ws Workspace
	r.ProbeEmpty(hs, &ws) // warm-up
	avg := testing.AllocsPerRun(100, func() {
		if r.ProbeEmpty(hs, &ws) {
			t.Fatal("probe unexpectedly empty")
		}
	})
	if avg != 0 {
		t.Fatalf("warmed ProbeEmpty allocates %.1f times per call, want 0", avg)
	}
}
