package ordu

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ordu/internal/data"
	"ordu/internal/geom"
)

// TestIntegrationAllGenerators runs the full public pipeline (index, classic
// operators, ORD, ORU) over every workload generator and checks the
// structural relations the paper establishes between the operators.
func TestIntegrationAllGenerators(t *testing.T) {
	workloads := map[string][][]float64{
		"IND":   toRecords(data.Synthetic(data.IND, 3000, 4, 11)),
		"COR":   toRecords(data.Synthetic(data.COR, 3000, 4, 11)),
		"ANTI":  toRecords(data.Synthetic(data.ANTI, 3000, 4, 11)),
		"HOTEL": toRecords(data.Hotel(3000, 11)),
		"HOUSE": toRecords(data.House(3000, 11)),
		"NBA":   toRecords(data.NBA(3000, 11)),
		"TA":    toRecords(data.TripAdvisor(0, 11)),
	}
	rng := rand.New(rand.NewSource(12))
	for name, recs := range workloads {
		t.Run(name, func(t *testing.T) {
			ds, err := NewDataset(recs)
			if err != nil {
				t.Fatal(err)
			}
			d := ds.Dim()
			w := make([]float64, d)
			for i := range w {
				w[i] = 1 / float64(d)
			}
			// Perturb deterministically per workload.
			w[rng.Intn(d)] += 0.1
			w, _ = Preference(w)

			k := 3
			band, err := ds.KSkyband(k)
			if err != nil {
				t.Fatal(err)
			}
			bandSet := map[int]bool{}
			for _, r := range band {
				bandSet[r.ID] = true
			}
			m := k + 7
			if m > len(band) {
				m = len(band)
			}

			ord, err := ds.ORD(w, k, m)
			if err != nil {
				t.Fatalf("ORD: %v", err)
			}
			if len(ord.Records) != m {
				t.Fatalf("ORD returned %d records, want %d", len(ord.Records), m)
			}
			// ORD output is always a subset of the k-skyband.
			for _, r := range ord.Records {
				if !bandSet[r.ID] {
					t.Fatalf("ORD record %d outside the %d-skyband", r.ID, k)
				}
			}

			oru, err := ds.ORU(w, k, m)
			if err == ErrInsufficientData {
				// Legitimate on heavily correlated workloads; retry smaller.
				m = k
				oru, err = ds.ORU(w, k, m)
			}
			if err != nil {
				t.Fatalf("ORU: %v", err)
			}
			if len(oru.Records) != m {
				t.Fatalf("ORU returned %d records, want %d", len(oru.Records), m)
			}
			// ORU output is also within the k-skyband.
			for _, r := range oru.Records {
				if !bandSet[r.ID] {
					t.Fatalf("ORU record %d outside the %d-skyband", r.ID, k)
				}
			}
			// The top-k at w leads both outputs.
			top, _ := ds.TopK(w, k)
			for _, tr := range top {
				if !contains(ord.Records, tr.ID) {
					t.Fatalf("top-k record %d missing from ORD", tr.ID)
				}
				if !contains(oru.Records, tr.ID) {
					t.Fatalf("top-k record %d missing from ORU", tr.ID)
				}
			}
		})
	}
}

func toRecords(pts []geom.Vector) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}

func contains(rs []Result, id int) bool {
	for _, r := range rs {
		if r.ID == id {
			return true
		}
	}
	return false
}

// TestPublicQuickProperties fuzzes the public entry points: any valid
// (dataset, preference, k, m) combination either errors cleanly or returns
// exactly m records with a non-negative radius.
func TestPublicQuickProperties(t *testing.T) {
	prop := func(seed int64, kRaw, mRaw, dRaw uint8) bool {
		d := 2 + int(dRaw)%3
		k := 1 + int(kRaw)%5
		m := k + int(mRaw)%10
		rng := rand.New(rand.NewSource(seed))
		recs := make([][]float64, 150)
		for i := range recs {
			r := make([]float64, d)
			s := 0.0
			for j := range r {
				r[j] = rng.Float64()
				s += r[j]
			}
			f := (float64(d) / 2) / s
			for j := range r {
				r[j] = math.Min(1, r[j]*f)
			}
			recs[i] = r
		}
		ds, err := NewDataset(recs)
		if err != nil {
			return false
		}
		wr := make([]float64, d)
		for i := range wr {
			wr[i] = rng.Float64() + 0.01
		}
		w, err := Preference(wr)
		if err != nil {
			return false
		}
		res, err := ds.ORD(w, k, m)
		if err == ErrInsufficientData {
			return true
		}
		if err != nil {
			return false
		}
		return len(res.Records) == m && res.Rho >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestORURegionsCoverNeighbourhood: the finalized regions of an ORU result,
// sorted by mindist, must start at the seed (mindist 0) and grow
// monotonically up to the stopping radius.
func TestORURegionsCoverNeighbourhood(t *testing.T) {
	recs := toRecords(data.Synthetic(data.ANTI, 2000, 3, 13))
	ds, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Preference([]float64{1, 1, 1})
	res, err := ds.ORU(w, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions")
	}
	ds2 := res.Regions
	if ds2[0].MinDist > 1e-9 {
		t.Fatalf("first region at distance %g, want 0", ds2[0].MinDist)
	}
	if !sort.SliceIsSorted(ds2, func(i, j int) bool { return ds2[i].MinDist < ds2[j].MinDist }) {
		t.Fatal("regions not sorted by mindist")
	}
	last := ds2[len(ds2)-1].MinDist
	if math.Abs(last-res.Rho) > 1e-12 {
		t.Fatalf("rho %g != last region mindist %g", res.Rho, last)
	}
}
