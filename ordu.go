// Package ordu implements the ORD and ORU operators of Mouratidis, Li and
// Tang, "Marrying Top-k with Skyline Queries: Relaxing the Preference Input
// while Producing Output of Controllable Size" (SIGMOD 2021), together with
// the query machinery they build on: R-tree indexing, branch-and-bound
// top-k and skyband retrieval, rho-dominance, and upper-hull geometry.
//
// Both operators take a best-effort preference vector w (the seed), a rank
// parameter k, and a desired output size m, and report exactly m records:
//
//   - ORD relaxes dominance: it returns the records rho-dominated by fewer
//     than k others, for the minimum radius rho around w that yields m
//     records. It interpolates between the top-k at w (rho = 0) and the
//     traditional k-skyband (rho unbounded).
//   - ORU relaxes ranking: it returns the records that appear in the top-k
//     result of at least one preference vector within distance rho of w,
//     again for the minimum rho yielding m records — and reports every
//     order-sensitive top-k result with its preference region as a
//     by-product.
//
// Records are d-dimensional with larger-is-better attributes; preference
// vectors are non-negative with components summing to 1. Use Normalize to
// bring raw columns into shape.
//
// A minimal session:
//
//	ds, _ := ordu.NewDataset(records)             // builds the R-tree
//	res, _ := ds.ORU([]float64{0.5, 0.3, 0.2}, 5, 20)
//	for _, r := range res.Records { fmt.Println(r.ID, r.Record) }
package ordu

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ordu/internal/collection"
	"ordu/internal/core"
	"ordu/internal/geom"
	"ordu/internal/osskyline"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
	"ordu/internal/topk"
)

// Dataset is an indexed collection of records supporting the library's
// query operators. It is backed by internal/collection: an id-keyed mutable
// collection whose R-tree is maintained in place, so Insert/Update/Delete
// are immediately visible to subsequent queries without a rebuild. It is
// not safe for concurrent mutation; concurrent read-only queries are safe,
// and the serving layer serialises mutations against queries with a lock.
type Dataset struct {
	col *collection.Collection
}

// tree returns the backing spatial index.
//
//ordlint:borrows — the tree's leaf rectangles alias the packed storage
func (ds *Dataset) tree() *rtree.Tree { return ds.col.Tree() }

// Result is one record returned by a query.
type Result struct {
	// ID identifies the record (assigned in input order by NewDataset).
	ID int
	// Record holds the record's attributes.
	Record []float64
	// Score is the utility for the query's preference vector, when one was
	// involved (0 otherwise).
	Score float64
}

// ORDResult is the output of Dataset.ORD.
type ORDResult struct {
	// Records are the m output records in order of inflection radius: the
	// first j records form the result for every output size j <= m.
	Records []Result
	// Radii are the inflection radii parallel to Records: the radius at
	// which each record enters the rho-skyband.
	Radii []float64
	// Rho is the stopping radius (Definition 1).
	Rho float64
}

// RegionTopK is one preference region with a fixed order-sensitive top-k
// result, reported by ORU as a by-product (Section 5.3.1 of the paper).
type RegionTopK struct {
	// TopK is the order-sensitive top-k result holding anywhere in the
	// region.
	TopK []Result
	// MinDist is the region's distance from the seed vector.
	MinDist float64
	// Witness is a preference vector inside the region.
	Witness []float64
}

// ORUResult is the output of Dataset.ORU.
type ORUResult struct {
	// Records are the m output records in confirmation order.
	Records []Result
	// Rho is the stopping radius (Definition 2).
	Rho float64
	// Regions lists the finalized top-k regions in increasing distance
	// from the seed.
	Regions []RegionTopK
}

// NewDataset indexes the given records (each a slice of d >= 2 attributes,
// larger-is-better). Record i receives ID i.
func NewDataset(records [][]float64) (*Dataset, error) {
	if len(records) == 0 {
		return nil, errors.New("ordu: empty dataset")
	}
	d := len(records[0])
	if d < 2 {
		return nil, fmt.Errorf("ordu: records have %d attribute(s); need at least 2", d)
	}
	pts := make([]geom.Vector, len(records))
	for i, r := range records {
		if len(r) != d {
			return nil, fmt.Errorf("ordu: record %d has %d attributes, want %d", i, len(r), d)
		}
		for j, x := range r {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("ordu: record %d attribute %d is not finite", i, j)
			}
		}
		pts[i] = geom.Vector(r).Clone()
	}
	col, err := collection.FromPoints(pts)
	if err != nil {
		return nil, fmt.Errorf("ordu: %w", err)
	}
	return &Dataset{col: col}, nil
}

// Len returns the number of records.
func (ds *Dataset) Len() int { return ds.col.Len() }

// Dim returns the number of attributes per record.
func (ds *Dataset) Dim() int { return ds.col.Dim() }

// Record returns the attributes of a record by id. The slice aliases the
// dataset's packed storage: copy it to retain across mutations.
//
//ordlint:borrows — the slice aliases the packed storage
func (ds *Dataset) Record(id int) ([]float64, bool) {
	p, ok := ds.col.Get(id)
	return p, ok
}

// Stats snapshots the backing collection's bookkeeping: live count, dims,
// exact bounds, and cumulative write counters.
func (ds *Dataset) Stats() collection.Stats { return ds.col.Stats() }

// Insert adds a record and returns its id. The paper's operators need no
// precomputation beyond the index, so updates are immediately visible to
// subsequent queries (Section 3).
//
//ordlint:mutates — the insert may split tree nodes, invalidating outstanding handles and record views
func (ds *Dataset) Insert(record []float64) (int, error) {
	if len(record) != ds.Dim() {
		return 0, fmt.Errorf("%w: record has %d attributes, want %d", collection.ErrBadPoint, len(record), ds.Dim())
	}
	id := ds.col.NewID()
	if err := ds.col.Insert(id, geom.Vector(record)); err != nil {
		return 0, err
	}
	return id, nil
}

// InsertID adds a record under a caller-chosen id; it fails when the id is
// already live (collection.ErrDuplicateID) or the record is malformed
// (collection.ErrBadPoint).
//
//ordlint:mutates — the insert may split tree nodes, invalidating outstanding handles and record views
func (ds *Dataset) InsertID(id int, record []float64) error {
	if len(record) != ds.Dim() {
		return fmt.Errorf("%w: record has %d attributes, want %d", collection.ErrBadPoint, len(record), ds.Dim())
	}
	return ds.col.Insert(id, geom.Vector(record))
}

// Update replaces the record stored under a live id; it fails when the id
// is unknown (collection.ErrUnknownID) or the record is malformed
// (collection.ErrBadPoint).
//
//ordlint:mutates — the update rewrites the record's slot and may rebalance the tree
func (ds *Dataset) Update(id int, record []float64) error {
	if len(record) != ds.Dim() {
		return fmt.Errorf("%w: record has %d attributes, want %d", collection.ErrBadPoint, len(record), ds.Dim())
	}
	return ds.col.Update(id, geom.Vector(record))
}

// Upsert inserts the record when id is free and updates it when live,
// reporting which happened.
//
//ordlint:mutates — either path mutates the tree, invalidating outstanding handles and record views
func (ds *Dataset) Upsert(id int, record []float64) (updated bool, err error) {
	if len(record) != ds.Dim() {
		return false, fmt.Errorf("%w: record has %d attributes, want %d", collection.ErrBadPoint, len(record), ds.Dim())
	}
	return ds.col.Upsert(id, geom.Vector(record))
}

// Delete removes a record by id, reporting whether it existed.
//
//ordlint:mutates — condensing underfull nodes reassigns handles; the slot returns to the free list
func (ds *Dataset) Delete(id int) bool { return ds.col.Delete(id) }

// CountDominators returns how many records strictly dominate the given
// point (maximisation convention). The serving layer uses it as the cache
// keep-test after mutations: a point with at least k plain dominators
// cannot change any rho-skyband or top-k region with parameter k.
func (ds *Dataset) CountDominators(point []float64) int {
	return ds.tree().CountDominators(geom.Vector(point))
}

// ErrBadSeed reports an invalid preference seed vector w: wrong dimension,
// non-finite components, or off the unit simplex. Callers serving remote
// input (e.g. internal/server) match it with errors.Is to map the failure
// to a 4xx response.
var ErrBadSeed = errors.New("ordu: bad seed vector")

// ErrBadParams reports invalid query parameters: k < 1, m < 1, or m < k.
var ErrBadParams = errors.New("ordu: bad query parameters")

// prepW validates and copies a preference vector. Failures wrap ErrBadSeed.
func (ds *Dataset) prepW(w []float64) (geom.Vector, error) {
	if len(w) != ds.Dim() {
		return nil, fmt.Errorf("%w: dimension %d, want %d", ErrBadSeed, len(w), ds.Dim())
	}
	for j, x := range w {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: component %d is not finite", ErrBadSeed, j)
		}
	}
	v := geom.Vector(w)
	if err := geom.ValidatePreference(v, ds.Dim()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSeed, err)
	}
	return v.Clone(), nil
}

// checkK validates a rank parameter; failures wrap ErrBadParams.
func checkK(k int) error {
	if k < 1 {
		return fmt.Errorf("%w: k = %d, want k >= 1", ErrBadParams, k)
	}
	return nil
}

// checkKM validates an ORD/ORU parameter pair; failures wrap ErrBadParams.
func checkKM(k, m int) error {
	if err := checkK(k); err != nil {
		return err
	}
	if m < 1 {
		return fmt.Errorf("%w: m = %d, want m >= 1", ErrBadParams, m)
	}
	if m < k {
		return fmt.Errorf("%w: m = %d < k = %d; the smallest ORD/ORU output is the top-k itself", ErrBadParams, m, k)
	}
	return nil
}

// TopK returns the k records with the highest utility for w, best first
// (BBR branch-and-bound ranked retrieval).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) TopK(w []float64, k int) ([]Result, error) {
	v, err := ds.prepW(w)
	if err != nil {
		return nil, err
	}
	if err := checkK(k); err != nil {
		return nil, err
	}
	rs := topk.TopK(ds.tree(), v, k)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Record: r.Point, Score: r.Score}
	}
	return out, nil
}

// Skyline returns the records dominated by no other (BBS).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) Skyline() []Result {
	ms := skyband.Skyline(ds.tree())
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{ID: m.ID, Record: m.Point}
	}
	return out
}

// KSkyband returns the records dominated by fewer than k others (BBS).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) KSkyband(k int) ([]Result, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	ms := skyband.KSkyband(ds.tree(), k)
	out := make([]Result, len(ms))
	for i, m := range ms {
		out[i] = Result{ID: m.ID, Record: m.Point}
	}
	return out, nil
}

// OSSkyline returns the m skyline records that dominate the most records
// (the output-size-specified skyline of Lin et al. [49], the qualitative
// baseline of the paper's Section 6.1).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) OSSkyline(m int) []Result {
	rs := osskyline.TopM(ds.tree(), m)
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Record: r.Point, Score: float64(r.Count)}
	}
	return out
}

// ORD runs the paper's dominance-flavoured operator (Definition 1).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORD(w []float64, k, m int) (*ORDResult, error) {
	return ds.ORDCtx(context.Background(), w, k, m)
}

// ORDCtx is ORD with a context: the retrieval polls ctx cooperatively and
// aborts with an error wrapping ctx.Err() once the context is cancelled or
// its deadline passes — the hook the serving layer uses for per-request
// deadlines.
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORDCtx(ctx context.Context, w []float64, k, m int) (*ORDResult, error) {
	v, err := ds.prepW(w)
	if err != nil {
		return nil, err
	}
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	res, err := core.ORDCtx(ctx, ds.tree(), v, k, m)
	if err != nil {
		return nil, err
	}
	out := &ORDResult{Rho: res.Rho, Radii: res.Radii}
	for _, r := range res.Records {
		out.Records = append(out.Records, Result{ID: r.ID, Record: r.Point, Score: v.Dot(r.Point)})
	}
	return out, nil
}

// ORU runs the paper's ranking-flavoured operator (Definition 2).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORU(w []float64, k, m int) (*ORUResult, error) {
	return ds.ORUCtx(context.Background(), w, k, m)
}

// ORUCtx is ORU with a context (see ORDCtx).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORUCtx(ctx context.Context, w []float64, k, m int) (*ORUResult, error) {
	return ds.oruCtx(ctx, w, k, m, 0)
}

// ORUParallel is ORU with concurrent region partitioning — the
// parallelisation direction the paper proposes in Section 6.4. The result
// is identical to ORU; only wall-clock changes. workers <= 1 falls back to
// the sequential algorithm.
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORUParallel(w []float64, k, m, workers int) (*ORUResult, error) {
	return ds.ORUParallelCtx(context.Background(), w, k, m, workers)
}

// ORUParallelCtx is ORUParallel with a context (see ORDCtx).
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) ORUParallelCtx(ctx context.Context, w []float64, k, m, workers int) (*ORUResult, error) {
	return ds.oruCtx(ctx, w, k, m, workers)
}

// oruCtx validates, runs the core ORU and converts the result.
//
//ordlint:borrows — Result.Record aliases the packed storage
func (ds *Dataset) oruCtx(ctx context.Context, w []float64, k, m, workers int) (*ORUResult, error) {
	v, err := ds.prepW(w)
	if err != nil {
		return nil, err
	}
	if err := checkKM(k, m); err != nil {
		return nil, err
	}
	res, err := core.ORUWithCtx(ctx, ds.tree(), v, k, m, core.ORUOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := &ORUResult{Rho: res.Rho}
	for _, r := range res.Records {
		out.Records = append(out.Records, Result{ID: r.ID, Record: r.Point, Score: v.Dot(r.Point)})
	}
	for _, reg := range res.Regions {
		rt := RegionTopK{MinDist: reg.MinDist}
		for _, r := range reg.TopK {
			rt.TopK = append(rt.TopK, Result{ID: r.ID, Record: r.Point})
		}
		if wit, ok := reg.Region.FeasiblePoint(); ok {
			rt.Witness = wit
		}
		out.Regions = append(out.Regions, rt)
	}
	return out, nil
}

// Filter returns a new dataset holding only the records within the given
// attribute ranges (inclusive; pass -Inf/+Inf entries for open bounds).
// This realises the range-predicate composition of Section 3: filter by
// hard constraints first, then run ORD/ORU on the survivors. The returned
// dataset assigns fresh ids; use the mapping to translate back.
func (ds *Dataset) Filter(min, max []float64) (*Dataset, []int, error) {
	if len(min) != ds.Dim() || len(max) != ds.Dim() {
		return nil, nil, fmt.Errorf("ordu: bounds have dims %d/%d, want %d", len(min), len(max), ds.Dim())
	}
	var records [][]float64
	var mapping []int
	// Scan iterates in ascending id order, so the sub-dataset's fresh ids
	// are deterministic without a post-hoc sort.
	ds.col.Scan(func(id int, p geom.Vector) bool {
		for j := range p {
			if p[j] < min[j] || p[j] > max[j] {
				return true
			}
		}
		records = append(records, p)
		mapping = append(mapping, id)
		return true
	})
	if len(records) == 0 {
		return nil, nil, errors.New("ordu: no records satisfy the range predicate")
	}
	sub, err := NewDataset(records)
	if err != nil {
		return nil, nil, err
	}
	return sub, mapping, nil
}

// ErrInsufficientData reports that the dataset cannot produce the requested
// number of records (m exceeds what the operator can ever output).
var ErrInsufficientData = core.ErrInsufficientData

// Normalize min-max scales each column of records into [0, 1] and returns
// the scaled copy. Columns with a single distinct value map to 0.5.
// Attributes where smaller is better should be negated by the caller first.
func Normalize(records [][]float64) [][]float64 {
	if len(records) == 0 {
		return nil
	}
	d := len(records[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, r := range records {
		for j, x := range r {
			lo[j] = math.Min(lo[j], x)
			hi[j] = math.Max(hi[j], x)
		}
	}
	out := make([][]float64, len(records))
	for i, r := range records {
		q := make([]float64, d)
		for j, x := range r {
			if hi[j] > lo[j] {
				q[j] = (x - lo[j]) / (hi[j] - lo[j])
			} else {
				q[j] = 0.5
			}
		}
		out[i] = q
	}
	return out
}

// Preference normalises a non-negative weight vector onto the unit simplex.
func Preference(weights []float64) ([]float64, error) {
	v, err := geom.NormalizeToSimplex(geom.Vector(weights).Clone())
	if err != nil {
		return nil, err
	}
	return v, nil
}
