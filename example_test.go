package ordu_test

import (
	"fmt"

	"ordu"
)

// The laptops from the package documentation: battery, performance,
// display (larger is better).
var laptops = [][]float64{
	{0.95, 0.30, 0.50},
	{0.20, 0.95, 0.70},
	{0.60, 0.60, 0.60},
	{0.55, 0.55, 0.95},
	{0.50, 0.50, 0.50},
}

func ExampleDataset_ORD() {
	ds, _ := ordu.NewDataset(laptops)
	w, _ := ordu.Preference([]float64{4, 3, 3})
	res, _ := ds.ORD(w, 2, 3)
	for i, r := range res.Records {
		fmt.Printf("%d: laptop %d (radius %.3f)\n", i+1, r.ID, res.Radii[i])
	}
	// Output:
	// 1: laptop 3 (radius 0.000)
	// 2: laptop 0 (radius 0.000)
	// 3: laptop 2 (radius 0.042)
}

func ExampleDataset_ORU() {
	ds, _ := ordu.NewDataset(laptops)
	w, _ := ordu.Preference([]float64{4, 3, 3})
	res, _ := ds.ORU(w, 1, 2)
	fmt.Printf("%d records within rho=%.3f\n", len(res.Records), res.Rho)
	for _, reg := range res.Regions {
		fmt.Printf("top-1 = laptop %d at distance %.3f\n", reg.TopK[0].ID, reg.MinDist)
	}
	// Output:
	// 2 records within rho=0.080
	// top-1 = laptop 3 at distance 0.000
	// top-1 = laptop 0 at distance 0.080
}

func ExampleDataset_TopK() {
	ds, _ := ordu.NewDataset(laptops)
	w, _ := ordu.Preference([]float64{1, 1, 1})
	res, _ := ds.TopK(w, 2)
	for _, r := range res {
		fmt.Printf("laptop %d scores %.3f\n", r.ID, r.Score)
	}
	// Output:
	// laptop 3 scores 0.683
	// laptop 1 scores 0.617
}

func ExampleNormalize() {
	raw := [][]float64{{100, 3}, {300, 1}, {200, 2}}
	for _, r := range ordu.Normalize(raw) {
		fmt.Println(r)
	}
	// Output:
	// [0 1]
	// [1 0]
	// [0.5 0.5]
}
