GO ?= go

.PHONY: all build test race cover bench experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table/figure of the paper's evaluation (reduced grid).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nba
	$(GO) run ./examples/tripadvisor
	$(GO) run ./examples/hotels

clean:
	$(GO) clean ./...
