GO ?= go

.PHONY: all build lint test race cover bench fuzz serve experiments examples clean

all: build test

build:
	$(GO) build ./...

# Project-specific static analysis (floatcmp, ctxpoll, senterr, nopanic,
# printguard); exits non-zero on any finding.
lint:
	$(GO) run ./cmd/ordlint ./...

test:
	$(GO) vet ./...
	$(GO) run ./cmd/ordlint ./...
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Exercise the property-based fuzz targets beyond their seed corpora.
fuzz:
	$(GO) test ./internal/geom -fuzz FuzzDominates -fuzztime 30s
	$(GO) test ./internal/lp -fuzz FuzzSimplexLP -fuzztime 30s

# Start the query server on :8375 with a generated demo dataset.
serve:
	$(GO) run ./cmd/ordud -addr :8375 -gen demo=ANTI:50000:4:1

# Regenerate every table/figure of the paper's evaluation (reduced grid).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nba
	$(GO) run ./examples/tripadvisor
	$(GO) run ./examples/hotels

clean:
	$(GO) clean ./...
