GO ?= go

.PHONY: all build lint test race cover bench benchdiff fuzz serve experiments examples clean

all: build test

build:
	$(GO) build ./...

# Project-specific static analysis, all sixteen checks: the syntactic suite
# (floatcmp, ctxpoll, senterr, nopanic, printguard), the CFG/dataflow suite
# (wsescape, goroutinecap, poolpair, noalloc), and the interprocedural suite
# (ctxflow, deepnoalloc, lockhold, maporder, borrowck, lockmode, atomicmix);
# exits non-zero on any finding. This target is the single lint invocation:
# `make test` and CI both go through it.
lint:
	$(GO) run ./cmd/ordlint ./...

test: lint
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Run the full benchmark suite and snapshot it as BENCH_$(TAG).json (e.g.
# `make bench TAG=pr3`). The raw output lands in BENCH_$(TAG).txt; the JSON
# snapshot is what gets committed and fed to cmd/benchdiff.
TAG ?= local
bench:
	$(GO) test -bench=. -benchmem . | tee BENCH_$(TAG).txt
	$(GO) run ./cmd/benchdiff -dump BENCH_$(TAG).txt > BENCH_$(TAG).json

# Compare two bench snapshots (raw .txt or .json); fails on threshold
# regressions. Usage: make benchdiff OLD=BENCH_pr3.json NEW=BENCH_local.json
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Exercise the property-based fuzz targets beyond their seed corpora.
fuzz:
	$(GO) test ./internal/geom -fuzz FuzzDominates -fuzztime 30s
	$(GO) test ./internal/lp -fuzz FuzzSimplexLP -fuzztime 30s

# Start the query server on :8375 with a generated demo dataset.
serve:
	$(GO) run ./cmd/ordud -addr :8375 -gen demo=ANTI:50000:4:1

# Regenerate every table/figure of the paper's evaluation (reduced grid).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nba
	$(GO) run ./examples/tripadvisor
	$(GO) run ./examples/hotels

clean:
	$(GO) clean ./...
