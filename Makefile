GO ?= go

.PHONY: all build test race cover bench serve experiments examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/server ./internal/core

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Start the query server on :8375 with a generated demo dataset.
serve:
	$(GO) run ./cmd/ordud -addr :8375 -gen demo=ANTI:50000:4:1

# Regenerate every table/figure of the paper's evaluation (reduced grid).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nba
	$(GO) run ./examples/tripadvisor
	$(GO) run ./examples/hotels

clean:
	$(GO) clean ./...
