GO ?= go

.PHONY: all build lint lint-budget test race cover bench benchdiff fuzz serve experiments examples clean

all: build test

build:
	$(GO) build ./...

# Project-specific static analysis, all twenty-four checks: the syntactic
# suite (floatcmp, ctxpoll, senterr, nopanic, printguard), the CFG/dataflow
# suite (wsescape, goroutinecap, poolpair, noalloc), the interprocedural
# suite (ctxflow, deepnoalloc, lockhold, maporder, borrowck, lockmode,
# atomicmix), the concurrency suite (chanprotocol, wgbalance, atomicpub,
# sharedwrite), and the handle suite (handleprov, stridebound, genstale,
# narrowcast); exits non-zero on any finding. This target is the single
# lint invocation: `make test` and CI both go through it.
lint:
	$(GO) run ./cmd/ordlint ./...

# Lint wall-time budget: the suite must finish within LINT_BUDGET seconds.
# The full 24-check run takes ~5s locally (dominated by type-checking the
# stdlib closure from source); the default budget is ~4x that plus headroom
# for slower CI runners. A blown budget means a check went super-linear —
# catch it here, not by watching CI get slower release by release.
LINT_BUDGET ?= 20
lint-budget:
	@start=$$(date +%s); \
	$(GO) run ./cmd/ordlint ./... || exit $$?; \
	end=$$(date +%s); elapsed=$$((end - start)); \
	echo "ordlint ./... took $${elapsed}s (budget $(LINT_BUDGET)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET) ]; then \
		echo "lint wall time $${elapsed}s exceeds budget $(LINT_BUDGET)s" >&2; exit 1; \
	fi

test: lint
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Run the full benchmark suite and snapshot it as BENCH_$(TAG).json (e.g.
# `make bench TAG=pr3`). The raw output lands in BENCH_$(TAG).txt; the JSON
# snapshot is what gets committed and fed to cmd/benchdiff.
TAG ?= local
bench:
	$(GO) test -bench=. -benchmem . | tee BENCH_$(TAG).txt
	$(GO) run ./cmd/benchdiff -dump BENCH_$(TAG).txt > BENCH_$(TAG).json

# Compare two bench snapshots (raw .txt or .json); fails on threshold
# regressions. Usage: make benchdiff OLD=BENCH_pr3.json NEW=BENCH_local.json
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# Exercise the property-based fuzz targets beyond their seed corpora.
fuzz:
	$(GO) test ./internal/geom -fuzz FuzzDominates -fuzztime 30s
	$(GO) test ./internal/lp -fuzz FuzzSimplexLP -fuzztime 30s
	$(GO) test ./internal/rtree -fuzz FuzzFlatTreeMutations -fuzztime 30s

# Start the query server on :8375 with a generated demo dataset.
serve:
	$(GO) run ./cmd/ordud -addr :8375 -gen demo=ANTI:50000:4:1

# Regenerate every table/figure of the paper's evaluation (reduced grid).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/nba
	$(GO) run ./examples/tripadvisor
	$(GO) run ./examples/hotels

clean:
	$(GO) clean ./...
