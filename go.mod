module ordu

go 1.22
