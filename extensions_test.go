package ordu

import (
	"math"
	"math/rand"
	"testing"

	"ordu/internal/data"
)

func TestORUParallelMatchesSequential(t *testing.T) {
	recs := toRecords(data.Synthetic(data.ANTI, 2000, 3, 17))
	ds, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Preference([]float64{2, 1, 1})
	seq, err := ds.ORU(w, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ds.ORUParallel(w, 3, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Rho-par.Rho) > 1e-9 || len(seq.Records) != len(par.Records) {
		t.Fatalf("parallel diverged: rho %g vs %g, %d vs %d records",
			seq.Rho, par.Rho, len(seq.Records), len(par.Records))
	}
	for i := range seq.Records {
		if seq.Records[i].ID != par.Records[i].ID {
			t.Fatalf("record order diverged at %d", i)
		}
	}
	// workers <= 1 falls back to sequential.
	one, err := ds.ORUParallel(w, 3, 15, 1)
	if err != nil || one.Rho != seq.Rho {
		t.Fatal("workers=1 fallback broken")
	}
}

func TestFilterThenQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	recs := make([][]float64, 500)
	for i := range recs {
		recs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ds, _ := NewDataset(recs)
	inf := math.Inf(1)
	sub, mapping, err := ds.Filter([]float64{0.5, 0, 0}, []float64{inf, inf, inf})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() == 0 || sub.Len() == ds.Len() {
		t.Fatalf("filter kept %d of %d", sub.Len(), ds.Len())
	}
	if len(mapping) != sub.Len() {
		t.Fatal("mapping length mismatch")
	}
	// Every kept record satisfies the predicate, and the mapping round-trips.
	for sid := 0; sid < sub.Len(); sid++ {
		r, ok := sub.Record(sid)
		if !ok || r[0] < 0.5 {
			t.Fatalf("filtered record %d violates predicate: %v", sid, r)
		}
		orig, ok := ds.Record(mapping[sid])
		if !ok {
			t.Fatalf("mapping %d points at unknown id", sid)
		}
		for j := range r {
			if r[j] != orig[j] {
				t.Fatal("mapping does not round-trip")
			}
		}
	}
	// Querying the filtered dataset works end-to-end.
	w, _ := Preference([]float64{1, 1, 1})
	res, err := sub.ORD(w, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Record[0] < 0.5 {
			t.Fatal("ORD on filtered dataset returned excluded record")
		}
	}
	// Degenerate cases.
	if _, _, err := ds.Filter([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("wrong-dimension bounds accepted")
	}
	if _, _, err := ds.Filter([]float64{9, 9, 9}, []float64{10, 10, 10}); err == nil {
		t.Error("empty filter result must error")
	}
}
