// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one benchmark family per figure. Sizes are reduced relative to
// the paper's testbed so the suite finishes in minutes; the parameter
// *shapes* (who wins, growth trends, crossovers) are what these benchmarks
// are meant to reproduce — see EXPERIMENTS.md for the side-by-side. The
// full-scale sweeps live in cmd/experiments.
package ordu

import (
	"fmt"
	"testing"

	"ordu/internal/collection"
	"ordu/internal/core"
	"ordu/internal/data"
	"ordu/internal/expr"
	"ordu/internal/fixedregion"
	"ordu/internal/geom"
	"ordu/internal/hull"
	"ordu/internal/osskyline"
	"ordu/internal/qp"
	"ordu/internal/region"
	"ordu/internal/rtree"
	"ordu/internal/skyband"
	"ordu/internal/topk"
)

// Bench-scale defaults: the paper's (400K, d=4, k=5, m=50) shrunk to keep
// a full -bench=. run in minutes.
const (
	benchN = 50_000
	benchD = 4
	benchK = 5
	benchM = 30
)

var benchCache = expr.NewCache()

func benchSeeds(d int) []geom.Vector { return expr.Seeds(d, 16) }

// runOp cycles through seed vectors, one query per iteration. Every
// benchmark family reports allocations: allocs/op is a tracked regression
// axis alongside ns/op (see cmd/benchdiff).
func runOp(b *testing.B, d int, fn func(w geom.Vector)) {
	b.Helper()
	seeds := benchSeeds(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(seeds[i%len(seeds)])
	}
}

// --- Table 2 defaults / Section 6.4 headline ---

func BenchmarkDefaultsORD(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
}

func BenchmarkDefaultsORU(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, benchM) })
}

// --- Figure 6: case study operators on the NBA 2018-19 slice ---

func BenchmarkFig6CaseStudy(b *testing.B) {
	players := data.NBA2019(2019)
	pts := make([]geom.Vector, len(players))
	for i, p := range players {
		pts[i] = geom.Vector{p.Stats[0], p.Stats[1]}
	}
	tree := rtree.BulkLoad(pts)
	w := geom.Vector{0.43, 0.57}
	ops := []struct {
		name string
		fn   func()
	}{
		{"ORD", func() { core.ORD(tree, w, 2, 6) }},
		{"ORU", func() { core.ORU(tree, w, 2, 6) }},
		{"TopM", func() { topk.TopK(tree, w, 6) }},
		{"OSSSkyline", func() { osskyline.TopM(tree, 6) }},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op.fn()
			}
		})
	}
}

// --- Figure 7: fixed-region output-size spread ---

func BenchmarkFig7FixedRegionTopK(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	seeds := benchSeeds(benchD)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := seeds[i%len(seeds)]
		fixedregion.TopKUnion(tree, w, fixedregion.NewBox(w, 0.2), benchK)
	}
}

// --- Figure 8: ORD and competitors across the parameter sweeps ---

func BenchmarkFig8Cardinality(b *testing.B) {
	for _, n := range []int{10_000, 50_000, 200_000} {
		tree := benchCache.Synthetic(data.IND, n, benchD)
		b.Run(fmt.Sprintf("ORD/n=%d", n), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig8Dimensionality(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		tree := benchCache.Synthetic(data.IND, benchN, d)
		b.Run(fmt.Sprintf("ORD/d=%d", d), func(b *testing.B) {
			runOp(b, d, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig8K(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	for _, k := range []int{1, 5, 10} {
		b.Run(fmt.Sprintf("ORD/k=%d", k), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, k, benchM) })
		})
	}
}

func BenchmarkFig8M(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	for _, m := range []int{10, 30, 50} {
		b.Run(fmt.Sprintf("ORD/m=%d", m), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, m) })
		})
	}
}

func BenchmarkFig8Competitors(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	b.Run("ORD", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
	})
	b.Run("ORD-BSL", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORDBSL(tree, w, benchK, benchM) })
	})
	b.Run("RSB-5", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { fixedregion.RSB(tree, w, benchK, benchM, 0.05) })
	})
	b.Run("RSB-10", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { fixedregion.RSB(tree, w, benchK, benchM, 0.10) })
	})
}

// --- Figure 9: ORD across distributions and real datasets ---

func BenchmarkFig9Distributions(b *testing.B) {
	for _, dist := range []data.Distribution{data.ANTI, data.COR, data.IND} {
		tree := benchCache.Synthetic(dist, benchN, benchD)
		b.Run(string(dist), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig9RealDatasets(b *testing.B) {
	for _, name := range []string{"HOTEL", "HOUSE", "NBA"} {
		tree := benchCache.Named(name, 20_000)
		b.Run(name, func(b *testing.B) {
			runOp(b, tree.Dim(), func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
		})
	}
}

// --- Figure 10: ORU and competitors ---

func BenchmarkFig10Cardinality(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		tree := benchCache.Synthetic(data.IND, n, benchD)
		b.Run(fmt.Sprintf("ORU/n=%d", n), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig10Dimensionality(b *testing.B) {
	for _, d := range []int{2, 3, 4} {
		tree := benchCache.Synthetic(data.IND, benchN, d)
		b.Run(fmt.Sprintf("ORU/d=%d", d), func(b *testing.B) {
			runOp(b, d, func(w geom.Vector) { core.ORU(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig10K(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	for _, k := range []int{1, 5} {
		b.Run(fmt.Sprintf("ORU/k=%d", k), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, k, benchM) })
		})
	}
}

func BenchmarkFig10M(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	for _, m := range []int{10, 30} {
		b.Run(fmt.Sprintf("ORU/m=%d", m), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, m) })
		})
	}
}

func BenchmarkFig10Competitors(b *testing.B) {
	// Smaller setting so the slow baselines stay tractable under -bench.
	tree := benchCache.Synthetic(data.IND, 10_000, benchD)
	const m = 20
	b.Run("ORU", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, m) })
	})
	b.Run("ORU-BSL", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORUBSL(tree, w, benchK, m, 0) })
	})
	b.Run("JAA-10", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { fixedregion.JAA(tree, w, benchK, m, 0.10) })
	})
}

// --- Figure 11: ORU across distributions and real datasets ---

func BenchmarkFig11Distributions(b *testing.B) {
	for _, dist := range []data.Distribution{data.ANTI, data.COR, data.IND} {
		tree := benchCache.Synthetic(dist, benchN, benchD)
		b.Run(string(dist), func(b *testing.B) {
			runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, benchM) })
		})
	}
}

func BenchmarkFig11RealDatasets(b *testing.B) {
	for _, name := range []string{"HOTEL", "HOUSE", "NBA"} {
		tree := benchCache.Named(name, 20_000)
		b.Run(name, func(b *testing.B) {
			runOp(b, tree.Dim(), func(w geom.Vector) { core.ORU(tree, w, 2, 10) })
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out ---

// AblationORDSwitch isolates the Section 4.2 enhancements (score-ordered
// fetch with the adaptive rho-bar switch) against the Section 4.1
// preliminary algorithm.
func BenchmarkAblationORDSwitch(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	b.Run("enhanced", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORD(tree, w, benchK, benchM) })
	})
	b.Run("full-skyband", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORDBSL(tree, w, benchK, benchM) })
	})
}

// AblationORUPartitionBypass isolates the small-union shortcut in
// Theorem-1 partitioning.
func BenchmarkAblationORUPartitionBypass(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	b.Run("bypass", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) {
			core.ORUWith(tree, w, benchK, benchM, core.ORUOptions{})
		})
	})
	b.Run("always-hull", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) {
			core.ORUWith(tree, w, benchK, benchM, core.ORUOptions{NoPartitionBypass: true})
		})
	})
}

// AblationORUGradual isolates the gradual radius/layer expansion of
// Section 5.3.1 against the eager baseline (all layers, all L1 regions).
func BenchmarkAblationORUGradual(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, 10_000, benchD)
	const m = 20
	b.Run("gradual", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORU(tree, w, benchK, m) })
	})
	b.Run("eager", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) { core.ORUBSL(tree, w, benchK, m, 0) })
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkSubstrateMindist(b *testing.B) {
	seeds := benchSeeds(benchD)
	pts := data.Synthetic(data.IND, 1000, benchD, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := seeds[i%len(seeds)]
		skyband.Mindist(w, pts[i%1000], pts[(i*7+1)%1000])
	}
}

func BenchmarkSubstrateKSkyband(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		skyband.KSkyband(tree, benchK)
	}
}

func BenchmarkSubstrateTopK(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	runOp(b, benchD, func(w geom.Vector) { topk.TopK(tree, w, benchK) })
}

func BenchmarkSubstrateRTreeBuild(b *testing.B) {
	pts := data.Synthetic(data.IND, benchN, benchD, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtree.BulkLoad(pts)
	}
}

func BenchmarkSubstrateUpperHull(b *testing.B) {
	pts := data.Synthetic(data.ANTI, 300, benchD, 3)
	ids := make([]int, len(pts))
	for i := range ids {
		ids[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull.ComputeUpper(ids, pts)
	}
}

// --- Flat-core kernel micros: branch-free dominance and the flat tree ---

// BenchmarkDominates measures the branch-free dominance kernel across the
// dimensionalities the paper's testbed covers. The operand stream cycles
// random pairs so the comparison outcomes stay unpredictable — the regime
// the arithmetic flag accumulation is designed for.
func BenchmarkDominates(b *testing.B) {
	for d := 2; d <= 6; d++ {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			pts := data.Synthetic(data.IND, 1024, d, 3)
			b.ReportAllocs()
			b.ResetTimer()
			hits := 0
			for i := 0; i < b.N; i++ {
				if pts[i%1024].Dominates(pts[(i*7+1)%1024]) {
					hits++
				}
			}
			benchSink = hits
		})
	}
}

// BenchmarkKSkyband measures the full k-skyband scan over the flat tree at
// d=2..6 (n shrunk so the high-d bands finish; the skyband grows sharply
// with dimensionality).
func BenchmarkKSkyband(b *testing.B) {
	for d := 2; d <= 6; d++ {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			tree := benchCache.Synthetic(data.IND, 10_000, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				skyband.KSkyband(tree, benchK)
			}
		})
	}
}

// BenchmarkRTreeBulkLoadSTR measures STR bulk construction of the flat
// tree at the paper-scale cardinality.
func BenchmarkRTreeBulkLoadSTR(b *testing.B) {
	pts := data.Synthetic(data.IND, 100_000, benchD, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchTree = rtree.BulkLoad(pts)
	}
}

var (
	benchSink int
	benchTree *rtree.Tree
)

// --- Hot-path micro-benchmarks: the workspace-reuse contract in numbers ---

// BenchmarkMindist measures the rho-dominance mindist kernel with a warmed
// workspace (the pruner/IRD steady state): closed-form fast path and exact
// QP fallback separately.
func BenchmarkMindist(b *testing.B) {
	b.Run("fast-path", func(b *testing.B) {
		w := geom.Vector{0.4, 0.3, 0.3}
		ri := geom.Vector{0.5, 0.5, 0.2}
		rj := geom.Vector{0.6, 0.4, 0.3}
		var ws skyband.Workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			skyband.MindistWS(w, ri, rj, &ws)
		}
	})
	b.Run("qp-fallback", func(b *testing.B) {
		// Perpendicular foot outside the simplex: exact projection QP.
		w := geom.Vector{0.01, 0.01, 0.98}
		ri := geom.Vector{0.9, 0.1, 0.3}
		rj := geom.Vector{0.4, 0.6, 0.4}
		var ws skyband.Workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			skyband.MindistWS(w, ri, rj, &ws)
		}
	})
}

// BenchmarkRegionMinDist measures the region mindist QP with a warmed
// workspace (the explorer's push steady state).
func BenchmarkRegionMinDist(b *testing.B) {
	r := region.Full(benchD).With(
		region.Beat(geom.Vector{0.9, 0.2, 0.1, 0.3}, geom.Vector{0.3, 0.8, 0.2, 0.2}),
		region.Beat(geom.Vector{0.9, 0.2, 0.1, 0.3}, geom.Vector{0.2, 0.3, 0.9, 0.1}),
		region.Beat(geom.Vector{0.9, 0.2, 0.1, 0.3}, geom.Vector{0.1, 0.4, 0.2, 0.8}),
	)
	w := geom.Vector{0.1, 0.2, 0.3, 0.4}
	var ws region.Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := r.MinDistWS(w, &ws); !ok {
			b.Fatal("region unexpectedly empty")
		}
	}
}

// BenchmarkQPSolve measures the Goldfarb-Idnani solver itself with a warmed
// workspace, on a simplex projection with active inequality constraints.
func BenchmarkQPSolve(b *testing.B) {
	pr := &qp.Problem{
		P:   []float64{1.2, -0.3, 0.1, 0.2},
		EqA: [][]float64{{1, 1, 1, 1}},
		EqB: []float64{1},
		InA: [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}},
		InB: []float64{0, 0, 0, 0},
	}
	var ws qp.Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ws.Solve(pr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Live-dataset mutation path ---

// Mutation-bench parameters: the rho matches the RSB-5 configuration used
// elsewhere in the suite, and sizes bracket the acceptance setting
// (single-point repair vs wholesale rebuild at n=100k).
const benchMutRho = 0.05

var benchMutSizes = []int{10_000, 100_000}

// mutationFixture builds a mutable collection of n IND points and, when
// withLive is set, a warmed Live rho-skyband maintainer over its tree.
func mutationFixture(b *testing.B, n int, withLive bool) (*collection.Collection, *skyband.Live) {
	b.Helper()
	pts := data.Synthetic(data.IND, n, benchD, 11)
	col, err := collection.FromPoints(pts)
	if err != nil {
		b.Fatal(err)
	}
	if !withLive {
		return col, nil
	}
	live, err := skyband.NewLive(col.Tree(), benchSeeds(benchD)[0], benchK, benchMutRho)
	if err != nil {
		b.Fatal(err)
	}
	live.Rebuild()
	return col, live
}

// MutationCollectionChurn measures the raw storage + R-tree cost of one
// insert/delete pair at steady-state size, without skyband maintenance.
func BenchmarkMutationCollectionChurn(b *testing.B) {
	for _, n := range benchMutSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			col, _ := mutationFixture(b, n, false)
			fresh := data.Synthetic(data.IND, 4096, benchD, 99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := col.NewID()
				if err := col.Insert(id, fresh[i%len(fresh)]); err != nil {
					b.Fatal(err)
				}
				col.Delete(id)
			}
		})
	}
}

// MutationInsertRepair measures single-point incremental repair: insert
// into the collection plus Live.OnInsert. Inserted points are drained in
// untimed batches so the dataset stays at size n.
func BenchmarkMutationInsertRepair(b *testing.B) {
	for _, n := range benchMutSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			col, live := mutationFixture(b, n, true)
			fresh := data.Synthetic(data.IND, 4096, benchD, 99)
			var pending []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := col.NewID()
				if err := col.Insert(id, fresh[i%len(fresh)]); err != nil {
					b.Fatal(err)
				}
				if err := live.OnInsert(id); err != nil {
					b.Fatal(err)
				}
				pending = append(pending, id)
				if len(pending) == 1024 {
					b.StopTimer()
					for _, d := range pending {
						col.Delete(d)
						if err := live.OnDelete(d); err != nil {
							b.Fatal(err)
						}
					}
					pending = pending[:0]
					b.StartTimer()
				}
			}
		})
	}
}

// MutationDeleteRepair measures single-point delete repair, draining the
// fixture's own points (the dataset shrinks across iterations; with
// microsecond-scale ops b.N stays well below n, so the drift is small).
// Only if a round drains the fixture completely is it rebuilt, untimed.
func BenchmarkMutationDeleteRepair(b *testing.B) {
	for _, n := range benchMutSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			col, live := mutationFixture(b, n, true)
			ids := col.IDs()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(ids) == 0 {
					b.StopTimer()
					col, live = mutationFixture(b, n, true)
					ids = col.IDs()
					b.StartTimer()
				}
				id := ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				col.Delete(id)
				if err := live.OnDelete(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// MutationUpdateRepair measures in-place point moves: Collection.Update
// plus Live.OnUpdate, cycling existing ids so the size never changes.
func BenchmarkMutationUpdateRepair(b *testing.B) {
	for _, n := range benchMutSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			col, live := mutationFixture(b, n, true)
			fresh := data.Synthetic(data.IND, 4096, benchD, 99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := i % n
				if err := col.Update(id, fresh[i%len(fresh)]); err != nil {
					b.Fatal(err)
				}
				if err := live.OnUpdate(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// MutationWholesaleRebuild measures the alternative the incremental path
// replaces: constructing and rebuilding a fresh Live maintainer from
// scratch after every write. The acceptance bar for the live-dataset work
// is InsertRepair/n=100000 beating this by >=10x.
func BenchmarkMutationWholesaleRebuild(b *testing.B) {
	for _, n := range benchMutSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			col, _ := mutationFixture(b, n, false)
			w := benchSeeds(benchD)[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lv, err := skyband.NewLive(col.Tree(), w, benchK, benchMutRho)
				if err != nil {
					b.Fatal(err)
				}
				lv.Rebuild()
			}
		})
	}
}

// AblationORUParallel measures the Section 6.4 parallelisation extension.
func BenchmarkAblationORUParallel(b *testing.B) {
	tree := benchCache.Synthetic(data.IND, benchN, benchD)
	b.Run("sequential", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) {
			core.ORUWith(tree, w, benchK, benchM, core.ORUOptions{})
		})
	})
	b.Run("workers-4", func(b *testing.B) {
		runOp(b, benchD, func(w geom.Vector) {
			core.ORUWith(tree, w, benchK, benchM, core.ORUOptions{Workers: 4})
		})
	})
}
