package ordu

import (
	"math/rand"
	"testing"
)

// TestDuplicateRecords: the paper assumes no coinciding records; the
// library must still terminate and honour the output size when duplicates
// exist (the hull's symbolic perturbation separates them).
func TestDuplicateRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := make([][]float64, 0, 120)
	for i := 0; i < 40; i++ {
		r := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		// Three copies of every record.
		base = append(base, r, append([]float64(nil), r...), append([]float64(nil), r...))
	}
	ds, err := NewDataset(base)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Preference([]float64{1, 1, 1})
	res, err := ds.ORD(w, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 12 {
		t.Fatalf("ORD on duplicates returned %d records", len(res.Records))
	}
	oru, err := ds.ORU(w, 2, 8)
	if err == ErrInsufficientData {
		t.Skip("duplicate-collapsed hull too small; acceptable")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(oru.Records) != 8 {
		t.Fatalf("ORU on duplicates returned %d records", len(oru.Records))
	}
}

// TestAllIdenticalRecords: a fully degenerate dataset.
func TestAllIdenticalRecords(t *testing.T) {
	recs := make([][]float64, 20)
	for i := range recs {
		recs[i] = []float64{0.5, 0.5}
	}
	ds, err := NewDataset(recs)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := Preference([]float64{1, 1})
	// Every record ties; the k-skyband is everything, so ORD can return
	// any m of them at radius 0.
	res, err := ds.ORD(w, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 || res.Rho != 0 {
		t.Fatalf("identical records: %d records, rho %g", len(res.Records), res.Rho)
	}
}

// TestTinyDatasets exercises datasets at or below k.
func TestTinyDatasets(t *testing.T) {
	ds, _ := NewDataset([][]float64{{0.2, 0.8}, {0.8, 0.2}})
	w, _ := Preference([]float64{1, 1})
	res, err := ds.ORD(w, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("got %d", len(res.Records))
	}
	if _, err := ds.ORD(w, 2, 3); err != ErrInsufficientData {
		t.Fatalf("m beyond dataset: %v", err)
	}
	// ORU with k equal to the dataset size.
	oru, err := ds.ORU(w, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(oru.Records) != 2 {
		t.Fatalf("ORU got %d", len(oru.Records))
	}
}

// TestExtremeSeedVectors puts the seed at simplex corners and edges.
func TestExtremeSeedVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	recs := make([][]float64, 300)
	for i := range recs {
		recs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ds, _ := NewDataset(recs)
	for _, w := range [][]float64{
		{1, 0, 0},     // corner: only attribute 0 matters
		{0.5, 0.5, 0}, // edge
		{0, 0, 1},     // another corner
		{0.98, 0.01, 0.01},
	} {
		res, err := ds.ORD(w, 2, 10)
		if err != nil {
			t.Fatalf("w=%v: %v", w, err)
		}
		if len(res.Records) != 10 {
			t.Fatalf("w=%v: %d records", w, len(res.Records))
		}
		oru, err := ds.ORU(w, 2, 6)
		if err != nil {
			t.Fatalf("ORU w=%v: %v", w, err)
		}
		if len(oru.Records) != 6 {
			t.Fatalf("ORU w=%v: %d records", w, len(oru.Records))
		}
	}
}

// TestHighDimensionalOperators runs the operators at the paper's upper
// dimensionalities (d = 6, 7).
func TestHighDimensionalOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range []int{6, 7} {
		recs := make([][]float64, 800)
		for i := range recs {
			r := make([]float64, d)
			for j := range r {
				r[j] = rng.Float64()
			}
			recs[i] = r
		}
		ds, _ := NewDataset(recs)
		wr := make([]float64, d)
		for i := range wr {
			wr[i] = 1 + rng.Float64()
		}
		w, _ := Preference(wr)
		res, err := ds.ORD(w, 3, 15)
		if err != nil {
			t.Fatalf("d=%d ORD: %v", d, err)
		}
		if len(res.Records) != 15 {
			t.Fatalf("d=%d: %d records", d, len(res.Records))
		}
		oru, err := ds.ORU(w, 2, 8)
		if err != nil {
			t.Fatalf("d=%d ORU: %v", d, err)
		}
		if len(oru.Records) != 8 {
			t.Fatalf("d=%d ORU: %d records", d, len(oru.Records))
		}
	}
}

// TestMPastSkybandBoundary walks m right up to the full k-skyband size.
func TestMPastSkybandBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	recs := make([][]float64, 200)
	for i := range recs {
		recs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ds, _ := NewDataset(recs)
	k := 2
	band, _ := ds.KSkyband(k)
	w, _ := Preference([]float64{1, 2, 1})
	res, err := ds.ORD(w, k, len(band))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(band) {
		t.Fatalf("full-band ORD: %d records, band %d", len(res.Records), len(band))
	}
	if _, err := ds.ORD(w, k, len(band)+1); err != ErrInsufficientData {
		t.Fatalf("band+1: %v", err)
	}
}
